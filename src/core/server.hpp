// The CalTrain training server (paper Fig. 1 / Fig. 2).
//
// Owns the training enclave, the fingerprinting enclave, and the
// per-participant state.  The pipeline:
//
//   1. Provisioning — participants attest the training enclave over the
//      secure channel and provision their symmetric data keys.
//   2. Upload — participants submit AES-GCM-encrypted records; the
//      enclave authenticates each record with the provisioned key and
//      discards failures (unregistered sources / tampering).
//   3. Training — encrypted records are shuffled into mini-batches and
//      decrypted/augmented/trained *inside* the enclave, with the
//      FrontNet/BackNet split of PartitionedTrainer.  After each epoch
//      the semi-trained model is released for participant re-assessment
//      and the split can move (dynamic re-assessment, Sec. IV-B).
//   4. Fingerprinting — a second enclave encloses the whole trained
//      network once and emits the linkage database (Sec. IV-C).
//   5. Release — each participant receives the model with the FrontNet
//      encrypted under its own provisioned key.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/partitioned.hpp"
#include "data/packaging.hpp"
#include "enclave/attestation.hpp"
#include "enclave/enclave.hpp"
#include "linkage/linkage_db.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "securechannel/handshake.hpp"
#include "securechannel/record.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::core {

struct ServerConfig {
  Bytes training_code_identity = BytesOf("caltrain training pipeline v1");
  Bytes fingerprint_code_identity = BytesOf("caltrain fingerprint stage v1");
  enclave::EpcConfig epc;
  std::uint64_t seed = 1;
};

struct TrainReport {
  std::vector<nn::EpochStats> epochs;
  std::vector<int> front_layers_per_epoch;  ///< split after re-assessment
  PartitionStats partition;
  enclave::EpcStats epc;
  enclave::TransitionStats transitions;
  std::size_t records_trained = 0;
  std::size_t records_rejected = 0;
};

struct PartitionedTrainOptions {
  nn::SgdConfig sgd;
  int batch_size = 32;
  int epochs = 12;
  int front_layers = 2;
  /// Continue from the currently held model instead of re-initializing
  /// (used when later-arriving data fine-tunes an existing model, as in
  /// the Trojaning Attack's retraining step).
  bool resume = false;
  /// Optional initial weight blob (SerializeWeightRange over the whole
  /// network).  Lets experiments start the enclave-trained model from
  /// the same initialization as a baseline model.
  Bytes initial_weights;
  bool augment = true;
  nn::AugmentOptions augment_options;
  std::uint64_t seed = 1;
  /// Optional dynamic re-assessment hook: called after each epoch with
  /// the semi-trained model; the returned value (if any) becomes the
  /// FrontNet depth for the next epoch.  This is where participants'
  /// consensus plugs in.
  std::function<std::optional<int>(const nn::Network&, int epoch)>
      reassess;
  /// Optional held-out evaluation set (accuracy per epoch).
  const std::vector<nn::Image>* test_images = nullptr;
  const std::vector<int>* test_labels = nullptr;
};

class TrainingServer {
 public:
  explicit TrainingServer(ServerConfig config = {});

  // --- attestation surface (what participants see) ---------------------
  [[nodiscard]] crypto::U128 attestation_public_key() const noexcept;
  [[nodiscard]] const crypto::Sha256Digest& training_measurement()
      const noexcept;

  // --- phase 1: key provisioning ---------------------------------------
  /// Handshake messages are relayed verbatim from the participant.
  [[nodiscard]] Bytes HandleClientHello(const std::string& participant_id,
                                        BytesView client_hello);
  [[nodiscard]] bool HandleClientFinished(const std::string& participant_id,
                                          BytesView client_finished);
  /// The first record on the established channel is the participant's
  /// 32-byte symmetric data key.  Returns false (and provisions nothing)
  /// on any channel failure.
  [[nodiscard]] bool HandleKeyProvision(const std::string& participant_id,
                                        BytesView record);

  [[nodiscard]] bool IsProvisioned(const std::string& participant_id) const;

  // --- directory durability (persist::ServiceLog hooks) -----------------
  /// Monotonic counter bumped on every successful provisioning.  The
  /// serving layer journals a fresh directory snapshot whenever the
  /// version it last logged falls behind this one.
  [[nodiscard]] std::uint64_t directory_version() const noexcept {
    return directory_version_.load(std::memory_order_acquire);
  }

  /// Wire snapshot of every provisioned participant's credentials
  /// (id, data key, signing public key), in id order — the state
  /// Train/FingerprintAll need to re-open stored records after a
  /// restart.  Handshake transcripts are deliberately excluded: a
  /// recovered server requires re-attestation for *new* provisioning,
  /// which is the honest post-crash posture.
  [[nodiscard]] Bytes SerializeDirectory() const;

  /// Rebuilds the participant directory from SerializeDirectory output
  /// and pins the version counter.  Recovery-only: requires an empty
  /// directory (no provisioned participants yet).
  void RestoreDirectory(BytesView blob, std::uint64_t version);

  /// Installs a model snapshot (Network::SerializeModel bytes) and the
  /// released FrontNet depth, as if Train had just returned.
  void RestoreModel(BytesView model_blob, int front_layers);

  [[nodiscard]] int released_front_layers() const noexcept {
    return released_front_layers_;
  }

  // --- phase 2: encrypted data upload ----------------------------------
  /// Authenticates each record inside the enclave; failures are counted
  /// and discarded.  Returns the number of accepted records.  Thin
  /// synchronous adapter over the batched core below (one record per
  /// transition, matching the historical per-record ECALL accounting);
  /// the async ingest pipeline (serve::Service) authenticates with
  /// larger batches to amortize the transition cost.  Thread-safe for
  /// concurrent upload sessions.
  std::size_t UploadRecords(const std::vector<data::EncryptedRecord>& records);

  /// Batched authentication core: verifies each record against its
  /// provisioned key, `batch_size` records per enclave transition (one
  /// enclave::TransitionGuard per batch).  Returns per-record accept
  /// flags; commits nothing.  Thread-safe for concurrent callers.
  [[nodiscard]] std::vector<char> AuthenticateRecords(
      const std::vector<data::EncryptedRecord>& records,
      std::size_t batch_size);

  /// Appends the accepted records to the training set and folds the
  /// rest into the rejection counter; returns the number accepted.
  /// Thread-safe; the relative order of concurrent commits is the
  /// caller's contract (serve::Service commits in ticket order so the
  /// async path reproduces the synchronous record order bit-for-bit).
  std::size_t CommitRecords(const std::vector<data::EncryptedRecord>& records,
                            const std::vector<char>& accepted);

  [[nodiscard]] std::size_t accepted_records() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t rejected_records() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

  // --- phase 3: partitioned training -----------------------------------
  /// Trains `spec` on all accepted records; the model stays owned by the
  /// server until released.
  TrainReport Train(const nn::NetworkSpec& spec,
                    const PartitionedTrainOptions& options);

  [[nodiscard]] nn::Network& model();

  // --- phase 4: fingerprinting stage ------------------------------------
  /// Runs the fingerprinting enclave over every accepted record with the
  /// trained model fully enclosed; returns the linkage database.
  /// `fingerprint_layer` selects the embedding layer (-1 = the paper's
  /// penultimate layer).
  [[nodiscard]] linkage::LinkageDatabase FingerprintAll(
      int fingerprint_layer = -1);

  // --- phase 5: model release -------------------------------------------
  /// Released model for one participant: spec + plaintext BackNet
  /// weights + FrontNet weights sealed under the participant's key.
  struct ReleasedModel {
    std::string participant_id;  ///< who this release is encrypted for
    Bytes spec_blob;
    int front_layers = 0;
    Bytes backnet_weights;            ///< plaintext
    Bytes frontnet_iv, frontnet_ciphertext, frontnet_tag;  ///< AES-GCM
  };
  [[nodiscard]] ReleasedModel ReleaseModelFor(
      const std::string& participant_id);

  /// Participant-side: decrypt and reassemble the released model.
  [[nodiscard]] static nn::Network AssembleReleasedModel(
      const ReleasedModel& released, BytesView participant_key);

  [[nodiscard]] enclave::Enclave& training_enclave() noexcept {
    return *training_enclave_;
  }

 private:
  /// Immutable provisioned key material.  Published as a shared_ptr
  /// snapshot: concurrent ingest workers copy the pointer out under
  /// the directory lock and keep the cipher alive even if the
  /// participant re-provisions (which swaps in a *new* Credentials
  /// object instead of mutating this one).
  struct Credentials {
    explicit Credentials(Bytes key, crypto::U128 signing_pub = 0)
        : data_key(std::move(key)), cipher(data_key), sign_pub(signing_pub) {}
    Bytes data_key;         ///< provisioned symmetric key (enclave-held)
    crypto::AesGcm cipher;  ///< cached key schedule
    /// Record-signing public key; 0 when the participant provisioned
    /// only a data key, in which case upload signatures are not
    /// required and authentication rests on the GCM tag alone.
    crypto::U128 sign_pub = 0;
  };

  struct ParticipantState {
    std::unique_ptr<securechannel::ServerHandshake> handshake;
    std::unique_ptr<securechannel::RecordReader> reader;
    /// nullptr until provisioned; guarded by participants_mu_.
    std::shared_ptr<const Credentials> creds;
  };

  ParticipantState& StateOf(const std::string& participant_id);
  [[nodiscard]] std::shared_ptr<const Credentials> CredentialsOf(
      const std::string& participant_id) const;

  ServerConfig config_;
  enclave::AttestationService attestation_;
  std::unique_ptr<enclave::Enclave> training_enclave_;
  std::unique_ptr<enclave::Enclave> fingerprint_enclave_;
  /// Guards the participant directory's structure and the `creds`
  /// pointer of every entry (readers copy the shared_ptr out under a
  /// shared lock; provisioning swaps in a new immutable snapshot under
  /// an exclusive lock).  Handshake state is owned by the provisioning
  /// flow, which is serial per participant.
  mutable util::SharedMutex participants_mu_;
  std::map<std::string, ParticipantState> participants_
      GUARDED_BY(participants_mu_);
  /// Guards records_.  Concurrent upload sessions append under it;
  /// Train / FingerprintAll hold it across their read passes (they run
  /// once ingest has quiesced, so the lock is uncontended there — it
  /// turns the quiescence convention into an enforced invariant).
  util::Mutex records_mu_;
  std::vector<data::EncryptedRecord> records_ GUARDED_BY(records_mu_);
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::uint64_t> directory_version_{0};
  /// Owned by the phase pipeline (train -> fingerprint -> release runs
  /// on one logical strand; serve::Service serializes via its strand).
  std::optional<nn::Network> model_;
  int released_front_layers_ = 0;
};

}  // namespace caltrain::core
