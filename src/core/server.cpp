#include "core/server.hpp"

#include <algorithm>
#include <numeric>

#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"

namespace caltrain::core {

namespace {

enclave::EnclaveConfig MakeEnclaveConfig(const std::string& name,
                                         const Bytes& code_identity,
                                         const enclave::EpcConfig& epc,
                                         std::uint64_t seed) {
  enclave::EnclaveConfig config;
  config.name = name;
  config.code_identity = code_identity;
  config.epc = epc;
  config.seed = seed;
  return config;
}

}  // namespace

TrainingServer::TrainingServer(ServerConfig config)
    : config_(std::move(config)),
      attestation_(config_.seed ^ 0xa77e57),
      training_enclave_(std::make_unique<enclave::Enclave>(
          MakeEnclaveConfig("training-enclave", config_.training_code_identity,
                            config_.epc, config_.seed))),
      fingerprint_enclave_(std::make_unique<enclave::Enclave>(
          MakeEnclaveConfig("fingerprint-enclave",
                            config_.fingerprint_code_identity, config_.epc,
                            config_.seed + 1))) {}

crypto::U128 TrainingServer::attestation_public_key() const noexcept {
  return attestation_.public_key();
}

const crypto::Sha256Digest& TrainingServer::training_measurement()
    const noexcept {
  return training_enclave_->measurement();
}

TrainingServer::ParticipantState& TrainingServer::StateOf(
    const std::string& participant_id) {
  // std::map nodes are stable, so the returned reference stays valid
  // while other sessions insert concurrently.
  util::WriterLock lock(participants_mu_);
  return participants_[participant_id];
}

std::shared_ptr<const TrainingServer::Credentials>
TrainingServer::CredentialsOf(const std::string& participant_id) const {
  util::ReaderLock lock(participants_mu_);
  const auto it = participants_.find(participant_id);
  if (it == participants_.end()) return nullptr;
  return it->second.creds;
}

Bytes TrainingServer::HandleClientHello(const std::string& participant_id,
                                        BytesView client_hello) {
  ParticipantState& state = StateOf(participant_id);
  state.handshake = std::make_unique<securechannel::ServerHandshake>(
      *training_enclave_, attestation_);
  return state.handshake->OnClientHello(client_hello);
}

bool TrainingServer::HandleClientFinished(const std::string& participant_id,
                                          BytesView client_finished) {
  ParticipantState& state = StateOf(participant_id);
  if (state.handshake == nullptr) return false;
  if (!state.handshake->OnClientFinished(client_finished)) return false;
  state.reader = std::make_unique<securechannel::RecordReader>(
      state.handshake->keys().client_write_key);
  return true;
}

bool TrainingServer::HandleKeyProvision(const std::string& participant_id,
                                        BytesView record) {
  ParticipantState& state = StateOf(participant_id);
  if (state.reader == nullptr) return false;
  return training_enclave_->Ecall([&]() -> bool {
    const auto payload =
        state.reader->Unprotect(record, BytesOf(participant_id));
    if (!payload.has_value()) return false;
    // Bare 16/32 bytes = legacy data-key-only provisioning; otherwise
    // a length-prefixed (data key, signing public key) pair.
    Bytes key;
    crypto::U128 sign_pub = 0;
    if (payload->size() == 16 || payload->size() == 32) {
      key = *payload;
    } else {
      try {
        ByteReader reader(BytesView(payload->data(), payload->size()));
        key = reader.ReadBytes();
        const Bytes sign_pub_bytes = reader.ReadBytes();
        CALTRAIN_REQUIRE(reader.AtEnd(), "trailing provisioning bytes");
        sign_pub = crypto::U128FromBytes(
            BytesView(sign_pub_bytes.data(), sign_pub_bytes.size()));
      } catch (const Error&) {
        return false;
      }
      if (key.size() != 16 && key.size() != 32) return false;
      if (sign_pub < 2 || sign_pub >= crypto::GroupPrime()) return false;
    }
    // Publish a fresh immutable snapshot; readers holding the old one
    // (e.g. ingest workers mid-batch) keep it alive via shared_ptr.
    auto creds = std::make_shared<const Credentials>(key, sign_pub);
    {
      util::WriterLock lock(participants_mu_);
      state.creds = std::move(creds);
    }
    directory_version_.fetch_add(1, std::memory_order_acq_rel);
    CALTRAIN_LOG(kInfo) << "provisioned data key for " << participant_id;
    return true;
  });
}

bool TrainingServer::IsProvisioned(const std::string& participant_id) const {
  return CredentialsOf(participant_id) != nullptr;
}

Bytes TrainingServer::SerializeDirectory() const {
  util::ReaderLock lock(participants_mu_);
  ByteWriter writer;
  std::uint32_t provisioned = 0;
  for (const auto& [id, state] : participants_) {
    if (state.creds != nullptr) ++provisioned;
  }
  writer.WriteU32(provisioned);
  // std::map iterates in id order, so the snapshot bytes are a pure
  // function of the provisioned set — independent of insertion order.
  for (const auto& [id, state] : participants_) {
    if (state.creds == nullptr) continue;
    writer.WriteString(id);
    writer.WriteBytes(state.creds->data_key);
    writer.WriteBytes(crypto::U128ToBytes(state.creds->sign_pub));
  }
  return writer.Take();
}

void TrainingServer::RestoreDirectory(BytesView blob, std::uint64_t version) {
  util::WriterLock lock(participants_mu_);
  for (const auto& [id, state] : participants_) {
    CALTRAIN_REQUIRE(state.creds == nullptr,
                     "RestoreDirectory requires an unprovisioned server");
  }
  ByteReader reader(blob);
  const std::uint32_t count = reader.ReadU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string id = reader.ReadString();
    Bytes key = reader.ReadBytes();
    const crypto::U128 sign_pub = crypto::U128FromBytes(reader.ReadBytes());
    participants_[id].creds =
        std::make_shared<const Credentials>(std::move(key), sign_pub);
  }
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing directory snapshot bytes");
  directory_version_.store(version, std::memory_order_release);
}

void TrainingServer::RestoreModel(BytesView model_blob, int front_layers) {
  model_ = nn::Network::DeserializeModel(model_blob);
  released_front_layers_ = front_layers;
}

std::size_t TrainingServer::UploadRecords(
    const std::vector<data::EncryptedRecord>& records) {
  return CommitRecords(records, AuthenticateRecords(records, 1));
}

std::vector<char> TrainingServer::AuthenticateRecords(
    const std::vector<data::EncryptedRecord>& records,
    std::size_t batch_size) {
  CALTRAIN_REQUIRE(batch_size > 0, "authentication batch must be positive");
  std::vector<char> accepted(records.size(), 0);
  // Memoized credential lookup: a serve-layer batch carries one
  // session's records, so without this every record would pay a
  // shared-lock + map-lookup on the hot ingest path.
  std::shared_ptr<const Credentials> creds;
  const std::string* creds_id = nullptr;
  for (std::size_t first = 0; first < records.size(); first += batch_size) {
    const std::size_t last = std::min(records.size(), first + batch_size);
    // One boundary crossing covers the whole batch: the enclave
    // authenticates `last - first` records per transition instead of
    // paying the ~8k-cycle ECALL cost per record.
    const enclave::TransitionGuard transition(*training_enclave_);

    // Stage 1: resolve credentials and collect the batch's signature
    // checks.  Records from signing participants must carry a valid
    // signature over their wire bytes; one aggregated SchnorrVerifyBatch
    // replaces a full verification per record.
    std::vector<std::size_t> candidate;  // records with credentials
    // Parallel to candidate; shared_ptr copies keep each snapshot alive
    // across the batch even if the participant re-provisions mid-flight.
    std::vector<std::shared_ptr<const Credentials>> cred_of;
    std::vector<Bytes> signed_bytes;          // keeps messages alive
    std::vector<crypto::SchnorrBatchItem> sig_items;
    std::vector<std::size_t> sig_record;  // candidate index per sig item
    for (std::size_t i = first; i < last; ++i) {
      if (creds_id == nullptr || records[i].participant_id != *creds_id) {
        creds = CredentialsOf(records[i].participant_id);
        creds_id = &records[i].participant_id;
      }
      if (creds == nullptr) continue;  // unregistered source
      if (creds->sign_pub != 0) {
        if (records[i].signature.size() != 32) continue;  // missing/mangled
        signed_bytes.push_back(records[i].SignedPortion());
        sig_record.push_back(candidate.size());
      }
      candidate.push_back(i);
      cred_of.push_back(creds);
    }
    // signed_bytes stops reallocating here, so views into it are stable.
    std::vector<char> sig_ok(candidate.size(), 1);
    for (std::size_t k = 0; k < sig_record.size(); ++k) {
      const std::size_t i = candidate[sig_record[k]];
      crypto::SchnorrBatchItem item;
      item.public_value = cred_of[sig_record[k]]->sign_pub;
      item.message = BytesView(signed_bytes[k].data(), signed_bytes[k].size());
      item.signature = crypto::DeserializeSignature(
          BytesView(records[i].signature.data(), records[i].signature.size()));
      sig_items.push_back(item);
    }
    if (!sig_items.empty()) {
      for (const std::size_t bad : crypto::SchnorrVerifyBatch(
               std::span<const crypto::SchnorrBatchItem>(sig_items))) {
        sig_ok[sig_record[bad]] = 0;
      }
    }

    // Stage 2: GCM-open the signature survivors in one batch (shared
    // multi-buffer SHA-256 for the content hashes).  The plaintexts are
    // discarded — training re-decrypts per batch inside the enclave.
    std::vector<const data::EncryptedRecord*> to_open;
    std::vector<const crypto::AesGcm*> open_ciphers;
    std::vector<std::size_t> open_record;
    for (std::size_t c = 0; c < candidate.size(); ++c) {
      if (sig_ok[c] == 0) continue;
      to_open.push_back(&records[candidate[c]]);
      open_ciphers.push_back(&cred_of[c]->cipher);
      open_record.push_back(candidate[c]);
    }
    const auto opened = data::OpenRecordsBatch(
        std::span<const data::EncryptedRecord* const>(to_open.data(),
                                                      to_open.size()),
        std::span<const crypto::AesGcm* const>(open_ciphers.data(),
                                               open_ciphers.size()));
    for (std::size_t k = 0; k < opened.size(); ++k) {
      accepted[open_record[k]] = opened[k].has_value() ? 1 : 0;
    }
  }
  return accepted;
}

std::size_t TrainingServer::CommitRecords(
    const std::vector<data::EncryptedRecord>& records,
    const std::vector<char>& accepted) {
  CALTRAIN_REQUIRE(records.size() == accepted.size(),
                   "accept-flag count != record count");
  std::size_t ok = 0;
  {
    util::MutexLock lock(records_mu_);
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (accepted[i] != 0) {
        records_.push_back(records[i]);
        ++ok;
      }
    }
  }
  accepted_.fetch_add(ok, std::memory_order_relaxed);
  rejected_.fetch_add(records.size() - ok, std::memory_order_relaxed);
  return ok;
}

TrainReport TrainingServer::Train(const nn::NetworkSpec& spec,
                                  const PartitionedTrainOptions& options) {
  // Training runs with ingest quiesced (serve::Service drains its queue
  // first); holding records_mu_ for the whole pass promotes that
  // convention into an enforced invariant — a concurrent CommitRecords
  // now blocks instead of racing the epoch loop's reads.  The lock is
  // uncontended in the quiesced state, so this costs nothing.
  util::MutexLock records_lock(records_mu_);
  CALTRAIN_REQUIRE(!records_.empty(), "no accepted training records");
  Rng rng(options.seed);
  if (options.resume) {
    CALTRAIN_REQUIRE(model_.has_value(), "resume requested without a model");
  } else {
    model_.emplace(spec);
    model_->InitWeights(rng);
    if (!options.initial_weights.empty()) {
      model_->DeserializeWeightRange(0, model_->NumLayers(),
                                     options.initial_weights);
    }
  }
  released_front_layers_ = options.front_layers;

  PartitionedTrainer trainer(*model_, *training_enclave_,
                             options.front_layers);
  TrainReport report;

  std::vector<std::size_t> order(records_.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 1; epoch <= options.epochs; ++epoch) {
    Stopwatch timer;
    rng.Shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;

    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t count =
          std::min<std::size_t>(static_cast<std::size_t>(options.batch_size),
                                order.size() - first);
      // In-enclave: authenticate, decrypt, augment, pack (paper Fig. 2).
      nn::Batch batch;
      std::vector<int> labels(count);
      training_enclave_->Ecall([&] {
        // Capabilities do not propagate into lambda bodies; the
        // enclosing Train holds records_mu_ for the whole pass.
        records_mu_.AssertHeld();
        for (std::size_t i = 0; i < count; ++i) {
          const data::EncryptedRecord& record = records_[order[first + i]];
          const auto creds = CredentialsOf(record.participant_id);
          CALTRAIN_CHECK(creds != nullptr,
                         "record from deprovisioned source");
          auto verified = data::OpenRecord(record, creds->cipher);
          CALTRAIN_CHECK(verified.has_value(),
                         "stored record failed re-authentication");
          nn::Image image = std::move(verified->image);
          if (options.augment) {
            image = nn::Augment(image, options.augment_options, rng);
          }
          if (batch.n == 0) {
            batch = nn::Batch(static_cast<int>(count), image.shape);
          }
          std::copy(image.pixels.begin(), image.pixels.end(),
                    batch.Sample(static_cast<int>(i)));
          labels[i] = verified->label;
        }
      });
      loss_sum += trainer.TrainBatch(batch, labels, options.sgd, rng);
      ++batches;
    }

    nn::EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss =
        static_cast<float>(loss_sum / std::max<std::size_t>(1, batches));
    stats.seconds = timer.ElapsedSeconds();
    if (options.test_images != nullptr && options.test_labels != nullptr) {
      stats.top1 = nn::EvaluateTopK(*model_, *options.test_images,
                                    *options.test_labels, 1);
      stats.top2 = nn::EvaluateTopK(*model_, *options.test_images,
                                    *options.test_labels, 2);
    }
    CALTRAIN_LOG(kInfo) << "[server] epoch " << epoch << " loss "
                        << stats.mean_loss << " top1 " << stats.top1
                        << " front=" << trainer.front_layers() << " ("
                        << stats.seconds << "s)";
    report.epochs.push_back(stats);
    report.front_layers_per_epoch.push_back(trainer.front_layers());

    // Dynamic re-assessment: participants inspect the semi-trained model
    // and may move the partition for the next epoch.
    if (options.reassess) {
      const auto new_front = options.reassess(*model_, epoch);
      if (new_front.has_value()) {
        trainer.SetFrontLayers(*new_front);
        released_front_layers_ = *new_front;
      }
    }
  }

  report.partition = trainer.stats();
  report.epc = training_enclave_->epc().stats();
  report.transitions = training_enclave_->transitions();
  report.records_trained = records_.size();
  report.records_rejected = rejected_.load(std::memory_order_relaxed);
  return report;
}

nn::Network& TrainingServer::model() {
  CALTRAIN_REQUIRE(model_.has_value(), "no trained model yet");
  return *model_;
}

linkage::LinkageDatabase TrainingServer::FingerprintAll(
    int fingerprint_layer) {
  CALTRAIN_REQUIRE(model_.has_value(), "no trained model yet");
  const int layer =
      fingerprint_layer < 0 ? model_->PenultimateIndex() : fingerprint_layer;
  // Same quiesced-ingest contract as Train: hold records_mu_ across the
  // read pass so a misplaced concurrent commit blocks instead of racing.
  util::MutexLock records_lock(records_mu_);
  linkage::LinkageDatabase db;
  // Fingerprinting is a one-time pass, so the *entire* network is
  // enclosed in the fingerprinting enclave (paper Sec. IV-C).
  const enclave::RegionId model_region = fingerprint_enclave_->epc().Allocate(
      "full-model", model_->WeightBytes(0, model_->NumLayers()));
  if (util::Parallelism::threads() <= 1) {
    // Serial path: unchanged from the original single-threaded stage,
    // so threads=1 is bit-identical to the pre-threading behaviour.
    for (const data::EncryptedRecord& record : records_) {
      fingerprint_enclave_->Ecall([&] {
        fingerprint_enclave_->epc().Touch(model_region);
        const auto creds = CredentialsOf(record.participant_id);
        CALTRAIN_CHECK(creds != nullptr, "record from deprovisioned source");
        auto verified = data::OpenRecord(record, creds->cipher);
        CALTRAIN_CHECK(verified.has_value(),
                       "stored record failed re-authentication");
        linkage::Fingerprint fp = linkage::ExtractFingerprintAt(
            *model_, verified->image, layer);
        (void)db.Insert(std::move(fp), verified->label,
                        verified->participant_id, verified->content_hash);
      });
    }
  } else {
    // Parallel path.  Phase 1 authenticates and decrypts every stored
    // record (one ECALL each, like the serial path — EPC accounting and
    // GCM verification are not thread safe).
    std::vector<data::VerifiedRecord> verified(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      fingerprint_enclave_->Ecall([&] {
        // Lambda-inherited capability: FingerprintAll holds records_mu_.
        records_mu_.AssertHeld();
        fingerprint_enclave_->epc().Touch(model_region);
        const auto creds = CredentialsOf(records_[i].participant_id);
        CALTRAIN_CHECK(creds != nullptr, "record from deprovisioned source");
        auto opened = data::OpenRecord(records_[i], creds->cipher);
        CALTRAIN_CHECK(opened.has_value(),
                       "stored record failed re-authentication");
        verified[i] = std::move(*opened);
      });
    }
    // Phases 2+3 stay inside the fingerprinting enclave — the
    // plaintext model and the database construction must not leave the
    // protection boundary, exactly as in the serial stage.  Phase 2 is
    // one multi-threaded ECALL extracting every fingerprint from the
    // *single shared enclaved model* (each worker brings only an
    // activation workspace — no per-worker model replica and no
    // serialization round-trip); every record's arithmetic is
    // identical to the serial extraction.  Phase 3 goes through the
    // segmented database's batched insert: ids are reserved in record
    // order before the per-class appends fan out over the pool, so ids
    // and tuples match the serial database element-wise.
    std::vector<linkage::Fingerprint> fingerprints =
        fingerprint_enclave_->Ecall([&] {
          return linkage::ExtractFingerprintsBatch(
              *model_, layer, verified.size(),
              [&](std::size_t i) -> const nn::Image& {
                return verified[i].image;
              });
        });
    std::vector<linkage::LinkageRecord> records(verified.size());
    for (std::size_t i = 0; i < verified.size(); ++i) {
      records[i].fingerprint = std::move(fingerprints[i]);
      records[i].label = verified[i].label;
      records[i].source = verified[i].participant_id;
      records[i].hash = verified[i].content_hash;
    }
    fingerprint_enclave_->Ecall([&] {
      (void)db.InsertBatch(std::move(records));
    });
    // Fold every class's tail into its VP-tree on the pool before the
    // database is handed to the query stage (indexes are derived data;
    // queries answer identically either way, just without the first-hit
    // build cost).
    db.RebuildIndexes();
  }
  fingerprint_enclave_->epc().Free(model_region);
  return db;
}

TrainingServer::ReleasedModel TrainingServer::ReleaseModelFor(
    const std::string& participant_id) {
  CALTRAIN_REQUIRE(model_.has_value(), "no trained model yet");
  const auto creds = CredentialsOf(participant_id);
  CALTRAIN_REQUIRE(creds != nullptr, "participant not provisioned");

  ReleasedModel released;
  released.participant_id = participant_id;
  released.front_layers = released_front_layers_;
  ByteWriter spec_writer;
  model_->spec().Serialize(spec_writer);
  released.spec_blob = spec_writer.Take();
  released.backnet_weights = model_->SerializeWeightRange(
      released_front_layers_, model_->NumLayers());

  // FrontNet weights leave the enclave only under the participant's key
  // (paper Sec. IV-B: "the learned model is delivered ... with the
  // FrontNet encrypted with symmetric keys provisioned by different
  // training participants").
  const Bytes frontnet =
      released_front_layers_ > 0
          ? model_->SerializeWeightRange(0, released_front_layers_)
          : Bytes{};
  training_enclave_->Ecall([&] {
    released.frontnet_iv = training_enclave_->drbg().Generate(
        crypto::kGcmIvSize);
    const crypto::GcmSealed sealed = creds->cipher.Seal(
        released.frontnet_iv, BytesOf("frontnet:" + participant_id),
        frontnet);
    released.frontnet_ciphertext = sealed.ciphertext;
    released.frontnet_tag.assign(sealed.tag.begin(), sealed.tag.end());
  });
  return released;
}

nn::Network TrainingServer::AssembleReleasedModel(const ReleasedModel& released,
                                                  BytesView participant_key) {
  ByteReader spec_reader(released.spec_blob);
  const nn::NetworkSpec spec = nn::NetworkSpec::Deserialize(spec_reader);
  nn::Network net(spec);

  const crypto::AesGcm cipher(participant_key);
  CALTRAIN_REQUIRE(released.frontnet_tag.size() == crypto::kGcmTagSize,
                   "bad released-model tag");
  std::array<std::uint8_t, crypto::kGcmTagSize> tag{};
  std::copy(released.frontnet_tag.begin(), released.frontnet_tag.end(),
            tag.begin());
  const std::optional<Bytes> frontnet =
      cipher.Open(released.frontnet_iv,
                  BytesOf("frontnet:" + released.participant_id),
                  released.frontnet_ciphertext, tag);
  if (!frontnet.has_value()) {
    ThrowError(ErrorKind::kAuthFailure,
               "FrontNet decryption failed (wrong participant key?)");
  }
  if (released.front_layers > 0) {
    net.DeserializeWeightRange(0, released.front_layers, *frontnet);
  }
  net.DeserializeWeightRange(released.front_layers, net.NumLayers(),
                             released.backnet_weights);
  return net;
}

}  // namespace caltrain::core
