// Partitioned training (paper Sec. IV-B).
//
// The network stack is split at `front_layers`: the FrontNet runs
// inside the training enclave (strict-FP kernels, EPC residency charged
// for its weights, activations and deltas), the BackNet runs outside on
// the fast path.  Per batch:
//
//   ECALL  { FrontNet forward }            — data never leaves plaintext
//   OCALL  { IRs out }  -> BackNet forward/backward outside
//   ECALL  { deltas in; FrontNet backward; FrontNet update }
//
// The boundary traffic (intermediate representations outward, deltas
// inward) is exactly the paper's full-training-lifecycle partitioning.
//
// TrainBatch is *data-parallel*: the mini-batch is decomposed into
// fixed-size shards (nn::MakeTrainShards — never a function of the
// thread count), each shard runs forward/backward against the shared
// const network in its own nn::LayerWorkspace with its own derived RNG
// stream, and the per-shard gradients are reduced in shard order
// before a single Update with DP-SGD sanitization applied once to the
// reduced gradients.  Results are therefore bit-identical at any
// thread count, and threads=1 executes the same shard plan inline.
#pragma once

#include "enclave/enclave.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace caltrain::core {

struct PartitionStats {
  std::uint64_t batches = 0;
  std::uint64_t ir_bytes_out = 0;     ///< IR traffic across the boundary
  std::uint64_t delta_bytes_in = 0;   ///< gradient traffic back in
};

/// Drives one network through partitioned forward/backward/update.
/// front_layers == 0 degenerates to fully-outside training;
/// front_layers == NumLayers() runs everything in the enclave.
class PartitionedTrainer {
 public:
  PartitionedTrainer(nn::Network& net, enclave::Enclave& enclave,
                     int front_layers);
  ~PartitionedTrainer();

  PartitionedTrainer(const PartitionedTrainer&) = delete;
  PartitionedTrainer& operator=(const PartitionedTrainer&) = delete;

  /// Moves the split point (dynamic re-assessment between epochs).
  void SetFrontLayers(int front_layers);
  [[nodiscard]] int front_layers() const noexcept { return front_layers_; }

  /// One SGD step on a decrypted batch already inside the enclave.
  /// Returns the batch loss.
  float TrainBatch(const nn::Batch& input, const std::vector<int>& labels,
                   const nn::SgdConfig& sgd, Rng& rng);

  /// Eval-mode forward returning class probabilities (FrontNet still
  /// runs enclaved — inference inputs get the same protection).
  [[nodiscard]] std::vector<std::vector<float>> Predict(
      const nn::Batch& input);

  [[nodiscard]] const PartitionStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] nn::Network& network() noexcept { return net_; }

  /// Bytes held by the per-shard training workspaces (bench metric:
  /// the data-parallel working set beyond the shared model).
  [[nodiscard]] std::size_t WorkspaceBytes() const noexcept;

 private:
  void AllocateEpcRegions();
  void ReleaseEpcRegions();
  void TouchFrontNet(int batch_size);

  nn::Network& net_;
  enclave::Enclave& enclave_;
  int front_layers_;
  enclave::RegionId weights_region_ = 0;
  enclave::RegionId activation_region_ = 0;
  bool regions_allocated_ = false;
  int last_batch_size_ = 0;
  PartitionStats stats_;
  /// One workspace per shard, reused across batches.
  std::vector<std::unique_ptr<nn::LayerWorkspace>> shard_ws_;
};

}  // namespace caltrain::core
