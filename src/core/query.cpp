#include "core/query.hpp"

#include <algorithm>

#include "linkage/fingerprint.hpp"
#include "util/mathx.hpp"
#include "util/threadpool.hpp"

namespace caltrain::core {

namespace {

/// One eval-mode forward pass through `ws` against the shared const
/// model, yielding both the softmax prediction and the normalized
/// fingerprint at `fingerprint_layer`.  The fingerprint layer precedes
/// softmax, so its activation falls out of the same pass that produces
/// the prediction — one forward instead of the two the query stage
/// used to pay.
void PredictAndFingerprint(const nn::Network& model, const nn::Image& input,
                           int fingerprint_layer, nn::LayerWorkspace& ws,
                           MispredictionReport& report) {
  const int softmax = model.SoftmaxIndex();
  const int out_layer = softmax >= 0 ? softmax + 1 : model.NumLayers();
  const int stop = std::max(out_layer, fingerprint_layer + 1);
  nn::LayerContext ctx;  // eval mode, Fast profile — same as PredictOne
  if (ws.input.n != 1 || ws.input.shape != input.shape) {
    ws.input = nn::Batch(1, input.shape);
  }
  ws.input.data = input.pixels;
  model.ForwardRange(&ws.input, 0, stop, ctx, ws);

  const nn::Batch& probs =
      ws.activations[static_cast<std::size_t>(out_layer - 1)];
  report.predicted_label = static_cast<int>(ArgMax(probs.data));
  const nn::Batch& embedding =
      ws.activations[static_cast<std::size_t>(fingerprint_layer)];
  report.fingerprint.assign(embedding.data.begin(), embedding.data.end());
  L2NormalizeInPlace(report.fingerprint);
}

}  // namespace

QueryService::QueryService(nn::Network model,
                           linkage::LinkageDatabase database,
                           int fingerprint_layer)
    : model_(std::move(model)),
      database_(std::move(database)),
      fingerprint_layer_(fingerprint_layer < 0 ? model_.PenultimateIndex()
                                               : fingerprint_layer),
      ws_(model_) {}

MispredictionReport QueryService::Investigate(const nn::Image& input,
                                              std::size_t k) {
  return InvestigateWith(ws_, input, k);
}

MispredictionReport QueryService::InvestigateWith(nn::LayerWorkspace& ws,
                                                  const nn::Image& input,
                                                  std::size_t k) {
  MispredictionReport report;
  PredictAndFingerprint(model_, input, fingerprint_layer_, ws, report);
  report.neighbors =
      database_.QueryNearest(report.fingerprint, report.predicted_label, k);
  return report;
}

std::vector<MispredictionReport> QueryService::InvestigateBatch(
    const std::vector<nn::Image>& inputs, std::size_t k) {
  std::vector<MispredictionReport> reports(inputs.size());
  // Forward passes are independent per input and run against the
  // shared const model, one activation workspace per worker block —
  // bit-identical at any thread count (same contract as
  // ExtractFingerprintsBatch).
  util::ParallelForBlocked(0, inputs.size(),
                           [&](std::size_t b0, std::size_t b1) {
    nn::LayerWorkspace ws(model_);
    for (std::size_t i = b0; i < b1; ++i) {
      PredictAndFingerprint(model_, inputs[i], fingerprint_layer_, ws,
                            reports[i]);
    }
  });

  std::vector<linkage::Fingerprint> fingerprints(inputs.size());
  std::vector<int> labels(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    fingerprints[i] = reports[i].fingerprint;
    labels[i] = reports[i].predicted_label;
  }
  std::vector<std::vector<linkage::QueryMatch>> neighbors =
      database_.QueryNearestBatch(fingerprints, labels, k);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    reports[i].neighbors = std::move(neighbors[i]);
  }
  return reports;
}

bool QueryService::VerifyTurnedInData(std::uint64_t tuple_id,
                                      const nn::Image& image,
                                      int label) const {
  return database_.VerifySubmission(tuple_id, image, label);
}

}  // namespace caltrain::core
