#include "core/query.hpp"

#include "linkage/fingerprint.hpp"
#include "util/mathx.hpp"

namespace caltrain::core {

QueryService::QueryService(nn::Network model,
                           linkage::LinkageDatabase database,
                           int fingerprint_layer)
    : model_(std::move(model)),
      database_(std::move(database)),
      fingerprint_layer_(fingerprint_layer < 0 ? model_.PenultimateIndex()
                                               : fingerprint_layer) {}

MispredictionReport QueryService::Investigate(const nn::Image& input,
                                              std::size_t k) {
  MispredictionReport report;
  const std::vector<float> probs = model_.PredictOne(input);
  report.predicted_label = static_cast<int>(ArgMax(probs));
  report.fingerprint =
      linkage::ExtractFingerprintAt(model_, input, fingerprint_layer_);
  report.neighbors =
      database_.QueryNearest(report.fingerprint, report.predicted_label, k);
  return report;
}

std::vector<MispredictionReport> QueryService::InvestigateBatch(
    const std::vector<nn::Image>& inputs, std::size_t k) {
  std::vector<MispredictionReport> reports(inputs.size());
  std::vector<linkage::Fingerprint> fingerprints(inputs.size());
  std::vector<int> labels(inputs.size());
  // Prediction and fingerprinting mutate the model's cached
  // activations, so they run serially; the kNN lookups fan out below.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::vector<float> probs = model_.PredictOne(inputs[i]);
    reports[i].predicted_label = static_cast<int>(ArgMax(probs));
    reports[i].fingerprint =
        linkage::ExtractFingerprintAt(model_, inputs[i], fingerprint_layer_);
    fingerprints[i] = reports[i].fingerprint;
    labels[i] = reports[i].predicted_label;
  }
  std::vector<std::vector<linkage::QueryMatch>> neighbors =
      database_.QueryNearestBatch(fingerprints, labels, k);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    reports[i].neighbors = std::move(neighbors[i]);
  }
  return reports;
}

bool QueryService::VerifyTurnedInData(std::uint64_t tuple_id,
                                      const nn::Image& image,
                                      int label) const {
  return database_.VerifySubmission(tuple_id, image, label);
}

}  // namespace caltrain::core
