#include "core/query.hpp"

#include "linkage/fingerprint.hpp"
#include "util/mathx.hpp"

namespace caltrain::core {

QueryService::QueryService(nn::Network model,
                           linkage::LinkageDatabase database,
                           int fingerprint_layer)
    : model_(std::move(model)),
      database_(std::move(database)),
      fingerprint_layer_(fingerprint_layer < 0 ? model_.PenultimateIndex()
                                               : fingerprint_layer) {}

MispredictionReport QueryService::Investigate(const nn::Image& input,
                                              std::size_t k) {
  MispredictionReport report;
  const std::vector<float> probs = model_.PredictOne(input);
  report.predicted_label = static_cast<int>(ArgMax(probs));
  report.fingerprint =
      linkage::ExtractFingerprintAt(model_, input, fingerprint_layer_);
  report.neighbors =
      database_.QueryNearest(report.fingerprint, report.predicted_label, k);
  return report;
}

bool QueryService::VerifyTurnedInData(std::uint64_t tuple_id,
                                      const nn::Image& image,
                                      int label) const {
  return database_.VerifySubmission(tuple_id, image, label);
}

}  // namespace caltrain::core
