#include "core/participant.hpp"

#include "securechannel/handshake.hpp"
#include "securechannel/record.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"

namespace caltrain::core {

namespace {
Bytes SeedBytes(std::uint64_t seed) {
  Bytes out(8);
  StoreLe64(out.data(), seed);
  return out;
}
}  // namespace

Participant::Participant(std::string id, data::LabeledDataset local_data,
                         std::uint64_t seed)
    : id_(std::move(id)),
      local_data_(std::move(local_data)),
      seed_(seed),
      drbg_(SeedBytes(seed), BytesOf(id_)) {
  data_key_ = drbg_.Generate(32);
  signing_key_ = crypto::SchnorrGenerate(drbg_);
  data::AssignSource(local_data_, id_);
}

void Participant::Provision(
    TrainingServer& server,
    const crypto::Sha256Digest& expected_measurement) {
  // The direct path is the degenerate transport: each message is a
  // function call into the server.
  struct DirectTransport final : ProvisionTransport {
    explicit DirectTransport(TrainingServer& s) : server(s) {}
    Bytes ProvisionHello(const std::string& participant_id,
                         BytesView client_hello) override {
      return server.HandleClientHello(participant_id, client_hello);
    }
    bool ProvisionFinished(const std::string& participant_id,
                           BytesView finished) override {
      return server.HandleClientFinished(participant_id, finished);
    }
    bool ProvisionKey(const std::string& participant_id,
                      BytesView record) override {
      return server.HandleKeyProvision(participant_id, record);
    }
    TrainingServer& server;
  };
  DirectTransport transport(server);
  ProvisionVia(transport, server.attestation_public_key(),
               expected_measurement);
}

void Participant::ProvisionVia(
    ProvisionTransport& transport, crypto::U128 attestation_public_key,
    const crypto::Sha256Digest& expected_measurement) {
  // 1. Attested handshake into the training enclave.
  securechannel::ClientHandshake handshake(attestation_public_key,
                                           expected_measurement, drbg_);
  const Bytes server_hello =
      transport.ProvisionHello(id_, handshake.Hello());
  const Bytes finished = handshake.OnServerHello(server_hello);
  if (!transport.ProvisionFinished(id_, finished)) {
    ThrowError(ErrorKind::kAuthFailure, "server rejected handshake");
  }

  // 2. Provision the symmetric data key and the record-signing public
  // key over the channel (length-prefixed pair; the server also still
  // accepts a bare 16/32-byte key for sign-less clients).
  ByteWriter provision;
  provision.WriteBytes(data_key_);
  const Bytes sign_pub = crypto::U128ToBytes(signing_key_.public_value);
  provision.WriteBytes(sign_pub);
  securechannel::RecordWriter writer(handshake.keys().client_write_key);
  if (!transport.ProvisionKey(id_, writer.Protect(provision.Take(),
                                                  BytesOf(id_)))) {
    ThrowError(ErrorKind::kAuthFailure, "key provisioning rejected");
  }
}

std::vector<data::EncryptedRecord> Participant::PackRecords() const {
  data::DataPackager packager(id_, data_key_, seed_ ^ 0x9c0ffee,
                              signing_key_);
  return packager.PackAll(local_data_);
}

std::size_t Participant::ProvisionAndUpload(
    TrainingServer& server,
    const crypto::Sha256Digest& expected_measurement) {
  Provision(server, expected_measurement);

  // 3. Seal every local record with the key and upload.
  const std::vector<data::EncryptedRecord> records = PackRecords();
  const std::size_t accepted = server.UploadRecords(records);
  CALTRAIN_LOG(kInfo) << id_ << " uploaded " << accepted << "/"
                      << records.size() << " records";
  return accepted;
}

int Participant::AssessSemiTrainedModel(nn::Network& semi_trained,
                                        nn::Network& validator,
                                        std::size_t probe_count) const {
  CALTRAIN_REQUIRE(!local_data_.images.empty(), "no local data to probe with");
  std::vector<nn::Image> probes;
  probes.reserve(probe_count);
  for (std::size_t i = 0; i < probe_count && i < local_data_.images.size();
       ++i) {
    probes.push_back(local_data_.images[i]);
  }
  const assess::ExposureReport report =
      assess::AssessExposure(semi_trained, validator, probes);
  return assess::RecommendFrontNetLayers(report);
}

std::pair<nn::Image, int> Participant::TurnInInstance(
    std::size_t local_index) const {
  CALTRAIN_REQUIRE(local_index < local_data_.size(),
                   "no such local instance");
  return {local_data_.images[local_index], local_data_.labels[local_index]};
}

}  // namespace caltrain::core
