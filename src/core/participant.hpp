// A training participant (paper Fig. 1: participants A-D).
//
// Owns a private local dataset and a symmetric data key.  The
// participant attests the server's training enclave, provisions its key
// over the secure channel, uploads encrypted records, and — after each
// epoch — can run the information-exposure assessment on the released
// semi-trained model to vote on the FrontNet depth.
#pragma once

#include <string>

#include "assess/exposure.hpp"
#include "core/server.hpp"
#include "data/dataset.hpp"
#include "data/packaging.hpp"

namespace caltrain::core {

/// Transport abstraction for the provisioning flow: each method carries
/// one opaque handshake/provisioning message to the training server and
/// returns its reply.  An in-process implementation calls
/// TrainingServer directly; the networking layer (net::Client) tunnels
/// the same opaque blobs through wire frames — the secure channel's
/// end-to-end guarantees do not depend on the hop in between.
class ProvisionTransport {
 public:
  virtual ~ProvisionTransport() = default;
  /// Delivers the client hello; returns the server hello.  Throws on
  /// transport failure or a server-side handshake rejection.
  virtual Bytes ProvisionHello(const std::string& participant_id,
                               BytesView client_hello) = 0;
  /// Delivers the client finished message; false = server rejected.
  virtual bool ProvisionFinished(const std::string& participant_id,
                                 BytesView finished) = 0;
  /// Delivers the protected key-provision record; false = rejected.
  virtual bool ProvisionKey(const std::string& participant_id,
                            BytesView record) = 0;
};

class Participant {
 public:
  /// `seed` derives the key and all client-side randomness.
  Participant(std::string id, data::LabeledDataset local_data,
              std::uint64_t seed);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const data::LabeledDataset& local_data() const noexcept {
    return local_data_;
  }
  [[nodiscard]] BytesView data_key() const noexcept { return data_key_; }
  /// Public half of the record-signing keypair provisioned alongside
  /// the data key; the server batch-verifies upload signatures with it.
  [[nodiscard]] crypto::U128 signing_public_key() const noexcept {
    return signing_key_.public_value;
  }

  /// Attested handshake + key provisioning only (no upload) — the
  /// entry point for clients that stream their records through the
  /// async serving API (serve::Service) instead of the blocking
  /// UploadRecords call.  Throws Error(kAuthFailure) on attestation or
  /// provisioning failure.
  void Provision(TrainingServer& server,
                 const crypto::Sha256Digest& expected_measurement);

  /// Same attested handshake + key provisioning, but with every message
  /// carried by `transport` — the path remote participants take through
  /// net::Client.  `attestation_public_key` comes from the server's
  /// published hello (the wire handshake pins it), and the handshake
  /// verifies `expected_measurement` against it exactly as the
  /// in-process flow does.  Throws Error(kAuthFailure) on attestation
  /// or provisioning failure.
  void ProvisionVia(ProvisionTransport& transport,
                    crypto::U128 attestation_public_key,
                    const crypto::Sha256Digest& expected_measurement);

  /// Seals every local record with the provisioned key (upload wire
  /// form, in local-data order).
  [[nodiscard]] std::vector<data::EncryptedRecord> PackRecords() const;

  /// Full provisioning flow against `server`: attest (verifying the
  /// expected measurement against the published attestation key),
  /// provision the data key, upload encrypted records.  Throws
  /// Error(kAuthFailure) if attestation fails.  Returns accepted count.
  /// Thin synchronous adapter over Provision + PackRecords.
  std::size_t ProvisionAndUpload(
      TrainingServer& server,
      const crypto::Sha256Digest& expected_measurement);

  /// Participant-side dynamic re-assessment (paper Sec. IV-B): runs the
  /// exposure framework on the semi-trained model with `probes` drawn
  /// from the participant's own private data, against the participant's
  /// IRValNet oracle.  Returns the recommended FrontNet depth.
  [[nodiscard]] int AssessSemiTrainedModel(nn::Network& semi_trained,
                                           nn::Network& validator,
                                           std::size_t probe_count) const;

  /// Forensic cooperation (paper Sec. IV-C): asked for the original data
  /// of training instance `local_index`, turn it in for hash
  /// verification.
  [[nodiscard]] std::pair<nn::Image, int> TurnInInstance(
      std::size_t local_index) const;

 private:
  std::string id_;
  data::LabeledDataset local_data_;
  Bytes data_key_;
  crypto::SchnorrKeyPair signing_key_;
  std::uint64_t seed_;
  crypto::HmacDrbg drbg_;
};

}  // namespace caltrain::core
