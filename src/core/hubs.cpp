#include "core/hubs.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"
#include "util/threadpool.hpp"

namespace caltrain::core {

namespace {

/// Deterministic per-(hub, epoch) RNG stream (splitmix64 finalizer over
/// the mixed coordinates).  Each hub epoch draws from its own stream,
/// so the trained sub-models never depend on the order — serial or
/// concurrent — in which the hubs execute.
std::uint64_t HubEpochSeed(std::uint64_t seed, std::uint64_t hub,
                           std::uint64_t epoch) noexcept {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (hub + 1)) ^
                    (0xbf58476d1ce4e5b9ULL * (epoch + 1));
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void AverageWeights(std::vector<nn::Network*>& models) {
  CALTRAIN_REQUIRE(!models.empty(), "no models to average");
  const int layers = models[0]->NumLayers();

  // Weight blobs are a flat sequence of length-prefixed f32 vectors, so
  // averaging can be done generically on the parsed vectors.
  std::vector<std::vector<std::vector<float>>> parsed(models.size());
  for (std::size_t m = 0; m < models.size(); ++m) {
    CALTRAIN_REQUIRE(models[m]->NumLayers() == layers,
                     "hub models must share the topology");
    const Bytes blob = models[m]->SerializeWeightRange(0, layers);
    ByteReader reader(blob);
    while (!reader.AtEnd()) parsed[m].push_back(reader.ReadF32Vector());
    CALTRAIN_REQUIRE(parsed[m].size() == parsed[0].size(),
                     "weight blob structure mismatch");
  }

  ByteWriter writer;
  const float inv = 1.0F / static_cast<float>(models.size());
  for (std::size_t v = 0; v < parsed[0].size(); ++v) {
    std::vector<float> mean(parsed[0][v].size(), 0.0F);
    for (std::size_t m = 0; m < models.size(); ++m) {
      CALTRAIN_REQUIRE(parsed[m][v].size() == mean.size(),
                       "weight vector size mismatch");
      for (std::size_t i = 0; i < mean.size(); ++i) {
        mean[i] += parsed[m][v][i] * inv;
      }
    }
    writer.WriteF32Vector(mean);
  }

  const Bytes merged = writer.Take();
  for (nn::Network* model : models) {
    model->DeserializeWeightRange(0, layers, merged);
  }
}

HubAggregator::HubAggregator(const nn::NetworkSpec& spec,
                             std::vector<data::LabeledDataset> shards,
                             const HubOptions& options)
    : options_(options), shards_(std::move(shards)) {
  CALTRAIN_REQUIRE(!shards_.empty(), "need at least one hub shard");
  Rng rng(options_.seed);
  for (std::size_t h = 0; h < shards_.size(); ++h) {
    CALTRAIN_REQUIRE(!shards_[h].images.empty(), "empty hub shard");
    auto model = std::make_unique<nn::Network>(spec);
    if (h == 0) {
      model->InitWeights(rng);
    }
    enclave::EnclaveConfig config;
    config.name = "hub-enclave-" + std::to_string(h);
    config.code_identity = BytesOf("caltrain hub training v1");
    config.seed = options_.seed + h;
    enclaves_.push_back(std::make_unique<enclave::Enclave>(config));
    models_.push_back(std::move(model));
  }
  // All hubs start from the same initialization.
  const Bytes init = models_[0]->SerializeWeightRange(0, models_[0]->NumLayers());
  for (std::size_t h = 1; h < models_.size(); ++h) {
    models_[h]->DeserializeWeightRange(0, models_[h]->NumLayers(), init);
  }
  for (std::size_t h = 0; h < models_.size(); ++h) {
    trainers_.push_back(std::make_unique<PartitionedTrainer>(
        *models_[h], *enclaves_[h], options_.front_layers));
  }
}

void HubAggregator::TrainHubEpoch(std::size_t hub, Rng& rng) {
  const data::LabeledDataset& shard = shards_[hub];
  std::vector<std::size_t> order(shard.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  for (std::size_t first = 0; first < order.size();
       first += static_cast<std::size_t>(options_.batch_size)) {
    const std::size_t count = std::min<std::size_t>(
        static_cast<std::size_t>(options_.batch_size), order.size() - first);
    nn::Batch batch(static_cast<int>(count), shard.images[0].shape);
    std::vector<int> labels(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t idx = order[first + i];
      nn::Image image = shard.images[idx];
      if (options_.augment) {
        image = nn::Augment(image, options_.augment_options, rng);
      }
      std::copy(image.pixels.begin(), image.pixels.end(),
                batch.Sample(static_cast<int>(i)));
      labels[i] = shard.labels[idx];
    }
    (void)trainers_[hub]->TrainBatch(batch, labels, options_.sgd, rng);
  }
}

HubReport HubAggregator::Train(const std::vector<nn::Image>& test_images,
                               const std::vector<int>& test_labels) {
  HubReport report;
  report.hubs = models_.size();

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    // Hubs are independent between merges (own model, own enclave, own
    // shard, own RNG stream), so the epoch fans out over the pool.
    // Bit-identity with the serial hub order is test-enforced.
    util::ParallelFor(0, models_.size(), [&](std::size_t h) {
      Rng hub_rng(HubEpochSeed(options_.seed, h,
                               static_cast<std::uint64_t>(epoch)));
      TrainHubEpoch(h, hub_rng);
    });
    if (epoch % options_.merge_every == 0 || epoch == options_.epochs) {
      std::vector<nn::Network*> raw;
      raw.reserve(models_.size());
      for (auto& m : models_) raw.push_back(m.get());
      AverageWeights(raw);
      ++report.merges;
    }
    nn::EpochStats stats;
    stats.epoch = epoch;
    if (!test_images.empty()) {
      stats.top1 = nn::EvaluateTopK(*models_[0], test_images, test_labels, 1);
      stats.top2 = nn::EvaluateTopK(*models_[0], test_images, test_labels, 2);
    }
    CALTRAIN_LOG(kInfo) << "[hubs] epoch " << epoch << " merged top1 "
                        << stats.top1;
    report.epochs.push_back(stats);
  }
  trained_ = true;
  return report;
}

nn::Network& HubAggregator::global_model() {
  CALTRAIN_REQUIRE(trained_, "hub training has not run");
  return *models_[0];
}

}  // namespace caltrain::core
