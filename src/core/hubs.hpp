// Hierarchical learning hubs (paper Sec. IV-B "Performance").
//
// To exploit SGD's parallelism beyond one enclave, CalTrain can form
// multiple learning hubs — each an enclave training a sub-model on the
// encrypted data of its downstream participant subgroup — with a root
// aggregation server periodically merging the sub-models by weight
// averaging, as in Federated Learning.  This module implements that
// extension: K hubs, each with its own enclave and data shard, merged
// every `merge_every` epochs.
#pragma once

#include <memory>
#include <vector>

#include "core/partitioned.hpp"
#include "data/dataset.hpp"
#include "enclave/enclave.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace caltrain::core {

struct HubOptions {
  nn::SgdConfig sgd;
  int batch_size = 32;
  int epochs = 4;
  int merge_every = 1;   ///< epochs between weight merges
  int front_layers = 2;
  bool augment = false;
  nn::AugmentOptions augment_options;
  std::uint64_t seed = 1;
};

struct HubReport {
  std::vector<nn::EpochStats> epochs;  ///< stats of the merged model
  std::size_t hubs = 0;
  std::size_t merges = 0;
};

/// Averages the weights of `models` into each of them (all must share
/// the same spec).  Exposed for testing.
void AverageWeights(std::vector<nn::Network*>& models);

class HubAggregator {
 public:
  /// One hub per shard; every hub trains the same topology.
  HubAggregator(const nn::NetworkSpec& spec,
                std::vector<data::LabeledDataset> shards,
                const HubOptions& options);

  /// Runs the hub training schedule; evaluation uses the merged model.
  /// Hubs train concurrently between merges (each on its own enclave
  /// with a per-(hub, epoch) RNG stream); the merged model is
  /// bit-identical to training the hubs in serial order at any thread
  /// count.
  HubReport Train(const std::vector<nn::Image>& test_images,
                  const std::vector<int>& test_labels);

  /// The merged global model (valid after Train).
  [[nodiscard]] nn::Network& global_model();

 private:
  void TrainHubEpoch(std::size_t hub, Rng& rng);

  HubOptions options_;
  std::vector<data::LabeledDataset> shards_;
  std::vector<std::unique_ptr<nn::Network>> models_;
  std::vector<std::unique_ptr<enclave::Enclave>> enclaves_;
  std::vector<std::unique_ptr<PartitionedTrainer>> trainers_;
  bool trained_ = false;
};

}  // namespace caltrain::core
