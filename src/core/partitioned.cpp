#include "core/partitioned.hpp"

#include "util/error.hpp"

namespace caltrain::core {

PartitionedTrainer::PartitionedTrainer(nn::Network& net,
                                       enclave::Enclave& enclave,
                                       int front_layers)
    : net_(net), enclave_(enclave), front_layers_(front_layers) {
  CALTRAIN_REQUIRE(front_layers >= 0 && front_layers <= net.NumLayers(),
                   "front_layers out of range");
  AllocateEpcRegions();
}

PartitionedTrainer::~PartitionedTrainer() { ReleaseEpcRegions(); }

void PartitionedTrainer::ReleaseEpcRegions() {
  if (!regions_allocated_) return;
  enclave_.epc().Free(weights_region_);
  enclave_.epc().Free(activation_region_);
  regions_allocated_ = false;
}

void PartitionedTrainer::AllocateEpcRegions() {
  ReleaseEpcRegions();
  last_batch_size_ = 0;
  if (front_layers_ == 0) return;
  weights_region_ = enclave_.epc().Allocate(
      "frontnet-weights", net_.WeightBytes(0, front_layers_));
  // Activation region is sized on first batch (depends on batch size).
  activation_region_ = enclave_.epc().Allocate("frontnet-activations", 0);
  regions_allocated_ = true;
}

void PartitionedTrainer::SetFrontLayers(int front_layers) {
  CALTRAIN_REQUIRE(front_layers >= 0 && front_layers <= net_.NumLayers(),
                   "front_layers out of range");
  if (front_layers == front_layers_) return;
  front_layers_ = front_layers;
  AllocateEpcRegions();
}

void PartitionedTrainer::TouchFrontNet(int batch_size) {
  if (front_layers_ == 0) return;
  if (batch_size != last_batch_size_) {
    // Activations + deltas for every front layer, plus the input batch:
    // this is the in-enclave working set beyond the weights.
    std::size_t activation_bytes =
        static_cast<std::size_t>(batch_size) * net_.input_shape().Flat() *
        sizeof(float);
    for (int i = 0; i < front_layers_; ++i) {
      activation_bytes += 2 *
                          static_cast<std::size_t>(batch_size) *
                          net_.layer(i).out_shape().Flat() * sizeof(float);
    }
    enclave_.epc().Resize(activation_region_, activation_bytes);
    last_batch_size_ = batch_size;
  }
  enclave_.epc().Touch(weights_region_);
  enclave_.epc().Touch(activation_region_);
}

float PartitionedTrainer::TrainBatch(const nn::Batch& input,
                                     const std::vector<int>& labels,
                                     const nn::SgdConfig& sgd, Rng& rng) {
  const int total = net_.NumLayers();
  const int k = front_layers_;

  nn::LayerContext enclave_ctx;
  enclave_ctx.training = true;
  enclave_ctx.rng = &rng;
  enclave_ctx.profile = nn::KernelProfile::kPrecise;
  enclave_ctx.labels = &labels;

  nn::LayerContext host_ctx = enclave_ctx;
  host_ctx.profile = nn::KernelProfile::kFast;

  if (k > 0) {
    // FrontNet forward inside the enclave.
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      net_.ForwardRange(&input, 0, k, enclave_ctx);
    });
    // IRs cross the boundary outward.
    enclave_.Ocall([&] {
      stats_.ir_bytes_out += net_.ActivationAt(k - 1).TotalBytes();
    });
  }
  if (k < total) {
    if (k == 0) {
      net_.ForwardRange(&input, 0, total, host_ctx);
    } else {
      net_.ForwardRange(nullptr, k, total, host_ctx);
    }
    // BackNet backward outside.
    net_.BackwardRange(k, total, host_ctx);
  }
  if (k > 0) {
    if (k < total) {
      // Deltas cross the boundary inward.
      stats_.delta_bytes_in += net_.DeltaAt(k - 1).TotalBytes();
    }
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      if (k == total) {
        net_.BackwardRange(0, total, enclave_ctx);
      } else {
        net_.BackwardRange(0, k, enclave_ctx);
      }
      net_.UpdateRange(0, k, sgd, input.n);
    });
  }
  if (k < total) {
    net_.UpdateRange(k, total, sgd, input.n);
  }

  ++stats_.batches;
  return net_.LastLoss();
}

std::vector<std::vector<float>> PartitionedTrainer::Predict(
    const nn::Batch& input) {
  const int k = front_layers_;
  nn::LayerContext enclave_ctx;
  enclave_ctx.profile = nn::KernelProfile::kPrecise;
  nn::LayerContext host_ctx;
  host_ctx.profile = nn::KernelProfile::kFast;

  const int out_layer =
      net_.SoftmaxIndex() >= 0 ? net_.SoftmaxIndex() + 1 : net_.NumLayers();
  const int front = std::min(k, out_layer);
  if (front > 0) {
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      net_.ForwardRange(&input, 0, front, enclave_ctx);
    });
    enclave_.Ocall([&] {
      stats_.ir_bytes_out += net_.ActivationAt(front - 1).TotalBytes();
    });
  }
  if (front < out_layer) {
    net_.ForwardRange(front == 0 ? &input : nullptr, front, out_layer,
                      host_ctx);
  }
  const nn::Batch& out = net_.ActivationAt(out_layer - 1);
  std::vector<std::vector<float>> result(static_cast<std::size_t>(input.n));
  for (int s = 0; s < input.n; ++s) {
    result[static_cast<std::size_t>(s)].assign(
        out.Sample(s), out.Sample(s) + out.SampleSize());
  }
  return result;
}

}  // namespace caltrain::core
