#include "core/partitioned.hpp"

#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caltrain::core {

PartitionedTrainer::PartitionedTrainer(nn::Network& net,
                                       enclave::Enclave& enclave,
                                       int front_layers)
    : net_(net), enclave_(enclave), front_layers_(front_layers) {
  CALTRAIN_REQUIRE(front_layers >= 0 && front_layers <= net.NumLayers(),
                   "front_layers out of range");
  AllocateEpcRegions();
}

PartitionedTrainer::~PartitionedTrainer() { ReleaseEpcRegions(); }

void PartitionedTrainer::ReleaseEpcRegions() {
  if (!regions_allocated_) return;
  enclave_.epc().Free(weights_region_);
  enclave_.epc().Free(activation_region_);
  regions_allocated_ = false;
}

void PartitionedTrainer::AllocateEpcRegions() {
  ReleaseEpcRegions();
  last_batch_size_ = 0;
  if (front_layers_ == 0) return;
  weights_region_ = enclave_.epc().Allocate(
      "frontnet-weights", net_.WeightBytes(0, front_layers_));
  // Activation region is sized on first batch (depends on batch size).
  activation_region_ = enclave_.epc().Allocate("frontnet-activations", 0);
  regions_allocated_ = true;
}

void PartitionedTrainer::SetFrontLayers(int front_layers) {
  CALTRAIN_REQUIRE(front_layers >= 0 && front_layers <= net_.NumLayers(),
                   "front_layers out of range");
  if (front_layers == front_layers_) return;
  front_layers_ = front_layers;
  AllocateEpcRegions();
}

void PartitionedTrainer::TouchFrontNet(int batch_size) {
  if (front_layers_ == 0) return;
  if (batch_size != last_batch_size_) {
    // Activations + deltas for every front layer, plus the input batch:
    // this is the in-enclave working set beyond the weights.
    std::size_t activation_bytes =
        static_cast<std::size_t>(batch_size) * net_.input_shape().Flat() *
        sizeof(float);
    for (int i = 0; i < front_layers_; ++i) {
      activation_bytes += 2 *
                          static_cast<std::size_t>(batch_size) *
                          net_.layer(i).out_shape().Flat() * sizeof(float);
    }
    enclave_.epc().Resize(activation_region_, activation_bytes);
    last_batch_size_ = batch_size;
  }
  enclave_.epc().Touch(weights_region_);
  enclave_.epc().Touch(activation_region_);
}

std::size_t PartitionedTrainer::WorkspaceBytes() const noexcept {
  std::size_t total = 0;
  for (const auto& ws : shard_ws_) total += ws->TotalBytes();
  return total;
}

float PartitionedTrainer::TrainBatch(const nn::Batch& input,
                                     const std::vector<int>& labels,
                                     const nn::SgdConfig& sgd, Rng& rng) {
  CALTRAIN_REQUIRE(static_cast<int>(labels.size()) == input.n,
                   "label count != batch size");
  const int total = net_.NumLayers();
  const int k = front_layers_;

  // Shard plan and per-shard RNG streams: both depend only on the
  // batch size and the incoming RNG state, never on the thread count.
  const std::vector<nn::TrainShard> shards = nn::MakeTrainShards(input.n, rng);
  nn::EnsureShardWorkspaces(net_, shard_ws_, shards.size());
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(shards.size());
  std::vector<std::vector<int>> shard_labels(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shard_rngs.emplace_back(shards[s].rng_seed);
    shard_labels[s].assign(labels.begin() + shards[s].begin,
                           labels.begin() + shards[s].end);
  }
  const auto shard_ctx = [&](std::size_t s, nn::KernelProfile profile) {
    nn::LayerContext ctx;
    ctx.training = true;
    ctx.rng = &shard_rngs[s];
    ctx.profile = profile;
    ctx.labels = &shard_labels[s];
    ctx.want_input_grad = false;  // nothing consumes dL/d(input) here
    return ctx;
  };

  if (k > 0) {
    // FrontNet forward inside the enclave: one multi-threaded ECALL,
    // every worker sharing the const network with its own workspace.
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      util::ParallelFor(0, shards.size(), [&](std::size_t s) {
        nn::LayerWorkspace& ws = *shard_ws_[s];
        nn::SliceBatch(input, shards[s].begin, shards[s].end, ws.input);
        net_.ForwardRange(&ws.input, 0, k,
                          shard_ctx(s, nn::KernelProfile::kPrecise), ws);
      });
    });
    // IRs cross the boundary outward.  (Only this batch's shards —
    // shard_ws_ may hold more entries from an earlier, larger batch.)
    enclave_.Ocall([&] {
      for (std::size_t s = 0; s < shards.size(); ++s) {
        stats_.ir_bytes_out +=
            shard_ws_[s]->activations[static_cast<std::size_t>(k - 1)]
                .TotalBytes();
      }
    });
  }
  if (k < total) {
    // BackNet forward + backward outside on the fast path.
    util::ParallelFor(0, shards.size(), [&](std::size_t s) {
      nn::LayerWorkspace& ws = *shard_ws_[s];
      const nn::LayerContext ctx = shard_ctx(s, nn::KernelProfile::kFast);
      if (k == 0) {
        nn::SliceBatch(input, shards[s].begin, shards[s].end, ws.input);
        net_.ForwardRange(&ws.input, 0, total, ctx, ws);
      } else {
        net_.ForwardRange(nullptr, k, total, ctx, ws);
      }
      net_.BackwardRange(k, total, ctx, ws);
    });
  }
  if (k > 0) {
    if (k < total) {
      // Deltas cross the boundary inward.
      for (std::size_t s = 0; s < shards.size(); ++s) {
        stats_.delta_bytes_in +=
            shard_ws_[s]->deltas[static_cast<std::size_t>(k - 1)].TotalBytes();
      }
    }
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      util::ParallelFor(0, shards.size(), [&](std::size_t s) {
        net_.BackwardRange(0, k, shard_ctx(s, nn::KernelProfile::kPrecise),
                           *shard_ws_[s]);
      });
    });
  }

  // Fixed-order reduction: shard order, never thread order, so the
  // float grouping is identical at any thread count.
  nn::GradientAccumulator& grads =
      nn::ReduceShardGrads(shard_ws_, shards.size());
  // Update applies DP-SGD sanitization once, on the reduced gradients,
  // then steps the weights — FrontNet inside the enclave.
  if (k > 0) {
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      net_.UpdateRange(0, k, sgd, input.n, grads);
    });
  }
  if (k < total) {
    net_.UpdateRange(k, total, sgd, input.n, grads);
  }

  ++stats_.batches;

  const int cost = net_.CostIndex();
  CALTRAIN_REQUIRE(cost >= 0, "network has no cost layer");
  return nn::SumShardLosses(shard_ws_, shards.size(), cost, input.n);
}

std::vector<std::vector<float>> PartitionedTrainer::Predict(
    const nn::Batch& input) {
  const int k = front_layers_;
  nn::LayerContext enclave_ctx;
  enclave_ctx.profile = nn::KernelProfile::kPrecise;
  nn::LayerContext host_ctx;
  host_ctx.profile = nn::KernelProfile::kFast;

  const int out_layer =
      net_.SoftmaxIndex() >= 0 ? net_.SoftmaxIndex() + 1 : net_.NumLayers();
  const int front = std::min(k, out_layer);
  if (front > 0) {
    enclave_.Ecall([&] {
      TouchFrontNet(input.n);
      net_.ForwardRange(&input, 0, front, enclave_ctx);
    });
    enclave_.Ocall([&] {
      stats_.ir_bytes_out += net_.ActivationAt(front - 1).TotalBytes();
    });
  }
  if (front < out_layer) {
    net_.ForwardRange(front == 0 ? &input : nullptr, front, out_layer,
                      host_ctx);
  }
  const nn::Batch& out = net_.ActivationAt(out_layer - 1);
  std::vector<std::vector<float>> result(static_cast<std::size_t>(input.n));
  for (int s = 0; s < input.n; ++s) {
    result[static_cast<std::size_t>(s)].assign(
        out.Sample(s), out.Sample(s) + out.SampleSize());
  }
  return result;
}

}  // namespace caltrain::core
