// Query stage (paper Fig. 2, right).
//
// A model user who hits an erroneous prediction passes the problematic
// input through the model, takes the predicted label Y and penultimate
// fingerprint F, and queries the linkage database for the closest
// training fingerprints in class Y.  The returned sources name the
// participants to solicit; their turned-in data is verified against the
// recorded hash digest H before forensic analysis.
#pragma once

#include <string>
#include <vector>

#include "linkage/linkage_db.hpp"
#include "nn/network.hpp"

namespace caltrain::core {

struct MispredictionReport {
  int predicted_label = 0;
  linkage::Fingerprint fingerprint;
  std::vector<linkage::QueryMatch> neighbors;  ///< closest first
};

class QueryService {
 public:
  /// `fingerprint_layer` must match the layer the database was built
  /// with (-1 = penultimate, the paper's choice).
  QueryService(nn::Network model, linkage::LinkageDatabase database,
               int fingerprint_layer = -1);

  /// Investigates one (mis)predicted input: one forward pass yields
  /// both the prediction and the fingerprint, then the k nearest
  /// same-class training instances are returned with sources.  Thin
  /// synchronous adapter over InvestigateWith (the service's reusable
  /// workspace).
  [[nodiscard]] MispredictionReport Investigate(const nn::Image& input,
                                                std::size_t k);

  /// Core of Investigate against a caller-held workspace.  Safe for
  /// concurrent callers with distinct workspaces: the forward pass
  /// shares the const model, and the segmented database supports
  /// concurrent queries — the async serving layer (serve::Service)
  /// fans these out over the pool.
  [[nodiscard]] MispredictionReport InvestigateWith(nn::LayerWorkspace& ws,
                                                    const nn::Image& input,
                                                    std::size_t k);

  /// Batched Investigate: the per-input forward passes fan out over
  /// the pool (shared const model, one workspace per worker), then
  /// every kNN lookup goes through the parallel batched database
  /// query.  result[i] == Investigate(inputs[i], k), element-wise
  /// identical at every thread count.
  [[nodiscard]] std::vector<MispredictionReport> InvestigateBatch(
      const std::vector<nn::Image>& inputs, std::size_t k);

  /// Verifies data turned in by a participant against the linkage hash.
  [[nodiscard]] bool VerifyTurnedInData(std::uint64_t tuple_id,
                                        const nn::Image& image,
                                        int label) const;

  [[nodiscard]] const linkage::LinkageDatabase& database() const noexcept {
    return database_;
  }
  [[nodiscard]] nn::Network& model() noexcept { return model_; }

 private:
  nn::Network model_;
  linkage::LinkageDatabase database_;
  int fingerprint_layer_;
  /// Reusable workspace for the serial Investigate path (the batched
  /// path brings one workspace per worker instead).
  nn::LayerWorkspace ws_;
};

}  // namespace caltrain::core
