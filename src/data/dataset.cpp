#include "data/dataset.hpp"

#include <numeric>

#include "util/error.hpp"

namespace caltrain::data {

void LabeledDataset::Append(nn::Image image, int label, std::string source) {
  images.push_back(std::move(image));
  labels.push_back(label);
  sources.push_back(std::move(source));
}

void LabeledDataset::Merge(const LabeledDataset& other) {
  images.insert(images.end(), other.images.begin(), other.images.end());
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
  sources.insert(sources.end(), other.sources.begin(), other.sources.end());
}

void LabeledDataset::Shuffle(Rng& rng) {
  CALTRAIN_CHECK(images.size() == labels.size() &&
                     images.size() == sources.size(),
                 "dataset arrays out of sync");
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  LabeledDataset shuffled;
  shuffled.images.reserve(images.size());
  for (std::size_t idx : order) {
    shuffled.Append(std::move(images[idx]), labels[idx],
                    std::move(sources[idx]));
  }
  *this = std::move(shuffled);
}

std::vector<LabeledDataset> SplitAmong(const LabeledDataset& dataset,
                                       std::size_t parts) {
  CALTRAIN_REQUIRE(parts > 0, "parts must be > 0");
  std::vector<LabeledDataset> out(parts);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out[i % parts].Append(dataset.images[i], dataset.labels[i],
                          dataset.sources[i]);
  }
  return out;
}

void AssignSource(LabeledDataset& dataset, const std::string& source) {
  for (auto& s : dataset.sources) s = source;
}

}  // namespace caltrain::data
