#include "data/synthetic_cifar.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caltrain::data {

namespace {

constexpr float kPi = 3.14159265358979323846F;

struct Rgb {
  float r, g, b;
};

/// HSV (h in [0,1)) to RGB, s = v = 1 fixed saturation ramp.
Rgb HueToRgb(float h) {
  const float x = h * 6.0F;
  const int sector = static_cast<int>(x) % 6;
  const float f = x - std::floor(x);
  switch (sector) {
    case 0: return {1.0F, f, 0.0F};
    case 1: return {1.0F - f, 1.0F, 0.0F};
    case 2: return {0.0F, 1.0F, f};
    case 3: return {0.0F, 1.0F - f, 1.0F};
    case 4: return {f, 0.0F, 1.0F};
    default: return {1.0F, 0.0F, 1.0F - f};
  }
}

}  // namespace

SyntheticCifar::SyntheticCifar(SyntheticCifarOptions options)
    : options_(options) {
  CALTRAIN_REQUIRE(options_.classes >= 2, "need at least two classes");
  CALTRAIN_REQUIRE(options_.shape.c == 3, "SyntheticCifar generates RGB");
}

nn::Image SyntheticCifar::Sample(int label, Rng& rng) const {
  CALTRAIN_REQUIRE(label >= 0 && label < options_.classes,
                   "label out of range");
  const nn::Shape shape = options_.shape;
  nn::Image img(shape);

  const float class_frac =
      static_cast<float>(label) / static_cast<float>(options_.classes);
  // Hue is sample-level nuisance, NOT class-coded: classes are defined
  // purely by texture (orientation x frequency x pattern family).  This
  // forces classifiers to use spatial structure — the content that IR
  // projections (grayscale) preserve at shallow layers and pooling
  // destroys at deep ones, which is what Experiment II measures.
  const float hue = rng.UniformFloat();
  const Rgb base = HueToRgb(hue);
  const Rgb anti = HueToRgb(std::fmod(hue + 0.5F, 1.0F));
  const int family = label % 3;
  const float theta = class_frac * kPi + rng.UniformFloat(-0.15F, 0.15F);
  // Class frequencies sit above the post-pooling Nyquist limit of the
  // Table I/II networks (7x7 feature maps can hold ~3.5 cycles), so the
  // class texture is visible at full resolution but cannot survive in
  // any single deep feature map — the property Experiment II probes.
  const float freq = 5.0F + 2.0F * static_cast<float>(label % 4) +
                     rng.UniformFloat(-0.3F, 0.3F);
  const float phase = rng.UniformFloat(0.0F, 0.9F * kPi);
  const float cx = 0.5F + 0.15F * rng.Gaussian();
  const float cy = 0.5F + 0.15F * rng.Gaussian();
  const float gain = rng.UniformFloat(0.85F, 1.15F);

  const float cs = std::cos(theta);
  const float sn = std::sin(theta);

  for (int y = 0; y < shape.h; ++y) {
    for (int x = 0; x < shape.w; ++x) {
      const float u = static_cast<float>(x) / static_cast<float>(shape.w);
      const float v = static_cast<float>(y) / static_cast<float>(shape.h);
      float t = 0.0F;  // pattern intensity in [0, 1]
      switch (family) {
        case 0: {  // oriented stripes
          const float proj = (u * cs + v * sn) * freq * 2.0F * kPi + phase;
          t = 0.5F + 0.5F * std::sin(proj);
          break;
        }
        case 1: {  // checkerboard
          const float a = std::sin((u * cs + v * sn) * freq * 2.0F * kPi +
                                   phase);
          const float b = std::sin((u * -sn + v * cs) * freq * 2.0F * kPi);
          t = (a * b > 0.0F) ? 0.85F : 0.15F;
          break;
        }
        default: {  // radial blob carrying a high-frequency ripple
          const float dx = u - cx;
          const float dy = v - cy;
          const float r2 = dx * dx + dy * dy;
          const float envelope = std::exp(-r2 * 5.0F);
          const float ripple =
              0.5F + 0.5F * std::sin(std::sqrt(r2) * freq * 2.0F * kPi +
                                     phase);
          t = 0.15F + 0.75F * envelope * ripple;
          break;
        }
      }
      const float noise = options_.noise_stddev * rng.Gaussian();
      const auto mix = [&](float fore, float back) {
        return std::clamp(gain * (t * fore + (1.0F - t) * back) + noise, 0.0F,
                          1.0F);
      };
      img.At(0, y, x) = mix(base.r, anti.r * 0.3F);
      img.At(1, y, x) = mix(base.g, anti.g * 0.3F);
      img.At(2, y, x) = mix(base.b, anti.b * 0.3F);
    }
  }
  return img;
}

LabeledDataset SyntheticCifar::Generate(std::size_t count, Rng& rng) const {
  LabeledDataset out;
  out.images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(
                                               options_.classes));
    out.Append(Sample(label, rng), label);
  }
  out.Shuffle(rng);
  return out;
}

}  // namespace caltrain::data
