// Participant-side data packaging (paper Sec. IV-A).
//
// Each participant locally seals every training record with its own
// symmetric key using AES-256-GCM.  Per the threat model, the class
// label travels in the clear (participants "release the training data
// labels attached to their corresponding (encrypted) training
// instances") but is covered by the authentication tag via the AAD, so
// a label cannot be flipped in transit.  The enclave verifies the tag
// with the provisioned key — records from unregistered sources or
// tampered channels fail authentication and are discarded.
#pragma once

#include <optional>
#include <string>

#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "data/dataset.hpp"
#include "nn/tensor.hpp"
#include "util/serial.hpp"

namespace caltrain::data {

/// Wire form of one encrypted training record.
struct EncryptedRecord {
  std::string participant_id;  ///< claimed source (authenticated via AAD)
  int label = 0;               ///< plaintext label (authenticated via AAD)
  Bytes iv;                    ///< 12-byte GCM nonce
  Bytes ciphertext;            ///< encrypted serialized image
  Bytes tag;                   ///< 16-byte GCM tag
  /// Optional 32-byte Schnorr signature over SignedPortion(), made with
  /// the participant's provisioned signing key.  Empty for participants
  /// that provision only a data key (legacy flow); the server then
  /// authenticates via the GCM tag alone.
  Bytes signature;

  /// The bytes the upload signature covers: every field except the
  /// signature itself, in Serialize() order.
  [[nodiscard]] Bytes SignedPortion() const;

  /// Exact byte count Serialize() produces — lets bulk encoders
  /// (the upload wire codec) reserve once instead of growing.
  [[nodiscard]] std::size_t SerializedSize() const noexcept;
  /// Appends the Serialize() bytes to an existing writer, no temp.
  void SerializeTo(ByteWriter& writer) const;
  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static EncryptedRecord Deserialize(BytesView blob);
};

/// Result of in-enclave verification + decryption.
struct VerifiedRecord {
  nn::Image image;
  int label = 0;
  std::string participant_id;
  crypto::Sha256Digest content_hash{};  ///< H of the linkage tuple
};

/// Canonical serialization of (image, label) — the bytes that are
/// encrypted and the bytes the linkage hash H covers.
[[nodiscard]] Bytes SerializeTrainingInstance(const nn::Image& image,
                                              int label);
[[nodiscard]] std::pair<nn::Image, int> DeserializeTrainingInstance(
    BytesView blob);

/// Hash digest H over the canonical instance bytes.
[[nodiscard]] crypto::Sha256Digest HashTrainingInstance(const nn::Image& image,
                                                        int label);

/// Participant-side packer: one per participant, bound to its key.
/// With a signing key attached, every packed record also carries a
/// Schnorr signature over its wire bytes, which the server verifies in
/// aggregated batches (crypto::SchnorrVerifyBatch) on the ingest path.
class DataPackager {
 public:
  DataPackager(std::string participant_id, BytesView key,
               std::uint64_t nonce_seed,
               std::optional<crypto::SchnorrKeyPair> signing_key =
                   std::nullopt);

  [[nodiscard]] EncryptedRecord Pack(const nn::Image& image, int label);

  /// Packs a whole local dataset.
  [[nodiscard]] std::vector<EncryptedRecord> PackAll(
      const LabeledDataset& dataset);

  [[nodiscard]] const std::string& participant_id() const noexcept {
    return participant_id_;
  }

 private:
  std::string participant_id_;
  crypto::AesGcm cipher_;
  crypto::HmacDrbg nonce_drbg_;
  std::optional<crypto::SchnorrKeyPair> signing_key_;
};

/// Enclave-side opener: verifies authenticity/integrity with the
/// provisioned key and decrypts.  Returns nullopt when the record fails
/// authentication (forged source, bit-flips, flipped label) — the
/// caller must discard it (paper: "injected training data from
/// unregistered training participants will be discarded").
[[nodiscard]] std::optional<VerifiedRecord> OpenRecord(
    const EncryptedRecord& record, BytesView key);

/// Same, with a caller-held cipher (avoids re-deriving the AES key
/// schedule and GHASH tables per record on hot paths).
[[nodiscard]] std::optional<VerifiedRecord> OpenRecord(
    const EncryptedRecord& record, const crypto::AesGcm& cipher);

/// Batch form of OpenRecord for the ingest path: GCM-opens every
/// record (records[i] with ciphers[i]) and computes the linkage
/// content hashes with the multi-buffer SHA-256 engine instead of one
/// hash per record.  results[i] is nullopt exactly where
/// OpenRecord(records[i], ciphers[i]) would reject.
[[nodiscard]] std::vector<std::optional<VerifiedRecord>> OpenRecordsBatch(
    std::span<const EncryptedRecord* const> records,
    std::span<const crypto::AesGcm* const> ciphers);

}  // namespace caltrain::data
