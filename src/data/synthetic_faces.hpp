// SyntheticFaces: an offline stand-in for VGG-Face (see DESIGN.md).
//
// Each identity is a fixed parameter vector (skin tone, face geometry,
// eye spacing, mouth curvature, hair shade); samples of that identity
// jitter pose, illumination and expression around those parameters.
// This preserves what Experiment IV needs from VGG-Face: per-identity
// clusters in embedding space that a conv net can separate, onto which
// the trojaning attack grafts a trigger-conditioned cluster.
#pragma once

#include "data/dataset.hpp"

namespace caltrain::data {

struct SyntheticFacesOptions {
  int identities = 20;
  nn::Shape shape{32, 32, 3};
  std::uint64_t identity_seed = 4242;  ///< fixes who the identities are
  float noise_stddev = 0.03F;
};

class SyntheticFaces {
 public:
  explicit SyntheticFaces(SyntheticFacesOptions options = {});

  /// One face image of `identity` with sample-level jitter from `rng`.
  [[nodiscard]] nn::Image Sample(int identity, Rng& rng) const;

  /// Balanced dataset of `count` faces.
  [[nodiscard]] LabeledDataset Generate(std::size_t count, Rng& rng) const;

  /// Dataset for a single identity (used to build the attacker-class
  /// corpus of Experiment IV).
  [[nodiscard]] LabeledDataset GenerateForIdentity(int identity,
                                                   std::size_t count,
                                                   Rng& rng) const;

  [[nodiscard]] int identities() const noexcept {
    return options_.identities;
  }
  [[nodiscard]] nn::Shape shape() const noexcept { return options_.shape; }

 private:
  struct IdentityParams {
    float skin_r, skin_g, skin_b;
    float face_w, face_h;       ///< ellipse half-axes (fraction of image)
    float eye_dx, eye_y;        ///< eye spacing / vertical position
    float eye_size;
    float mouth_curve;          ///< smile (+) / frown (-)
    float mouth_y;
    float hair_shade;
    float brow_tilt;
  };

  IdentityParams params_[64];
  SyntheticFacesOptions options_;
};

}  // namespace caltrain::data
