#include "data/packaging.hpp"

#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::data {

namespace {

Bytes RecordAad(const std::string& participant_id, int label) {
  ByteWriter writer;
  writer.WriteString(participant_id);
  writer.WriteU32(static_cast<std::uint32_t>(label));
  return writer.Take();
}

Bytes SeedBytes(std::uint64_t seed) {
  Bytes out(8);
  StoreLe64(out.data(), seed);
  return out;
}

}  // namespace

std::size_t EncryptedRecord::SerializedSize() const noexcept {
  // One u32 length prefix per field, in Serialize() order.
  return 4 + participant_id.size() + 4 + 4 + iv.size() + 4 +
         ciphertext.size() + 4 + tag.size() + 4 + signature.size();
}

Bytes EncryptedRecord::SignedPortion() const {
  ByteWriter writer;
  writer.Reserve(SerializedSize());
  writer.WriteString(participant_id);
  writer.WriteU32(static_cast<std::uint32_t>(label));
  writer.WriteBytes(iv);
  writer.WriteBytes(ciphertext);
  writer.WriteBytes(tag);
  return writer.Take();
}

void EncryptedRecord::SerializeTo(ByteWriter& writer) const {
  writer.WriteString(participant_id);
  writer.WriteU32(static_cast<std::uint32_t>(label));
  writer.WriteBytes(iv);
  writer.WriteBytes(ciphertext);
  writer.WriteBytes(tag);
  writer.WriteBytes(signature);
}

Bytes EncryptedRecord::Serialize() const {
  ByteWriter writer;
  writer.Reserve(SerializedSize());
  SerializeTo(writer);
  return writer.Take();
}

EncryptedRecord EncryptedRecord::Deserialize(BytesView blob) {
  ByteReader reader(blob);
  EncryptedRecord record;
  record.participant_id = reader.ReadString();
  record.label = static_cast<int>(reader.ReadU32());
  record.iv = reader.ReadBytes();
  record.ciphertext = reader.ReadBytes();
  record.tag = reader.ReadBytes();
  record.signature = reader.ReadBytes();
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes in encrypted record");
  return record;
}

Bytes SerializeTrainingInstance(const nn::Image& image, int label) {
  ByteWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.w));
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.h));
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.c));
  writer.WriteU32(static_cast<std::uint32_t>(label));
  writer.WriteF32Vector(image.pixels);
  return writer.Take();
}

std::pair<nn::Image, int> DeserializeTrainingInstance(BytesView blob) {
  ByteReader reader(blob);
  nn::Shape shape;
  shape.w = static_cast<int>(reader.ReadU32());
  shape.h = static_cast<int>(reader.ReadU32());
  shape.c = static_cast<int>(reader.ReadU32());
  const int label = static_cast<int>(reader.ReadU32());
  nn::Image image(shape);
  image.pixels = reader.ReadF32Vector();
  CALTRAIN_REQUIRE(image.pixels.size() == shape.Flat() && reader.AtEnd(),
                   "malformed training instance blob");
  return {std::move(image), label};
}

crypto::Sha256Digest HashTrainingInstance(const nn::Image& image, int label) {
  return crypto::Sha256Hash(SerializeTrainingInstance(image, label));
}

DataPackager::DataPackager(std::string participant_id, BytesView key,
                           std::uint64_t nonce_seed,
                           std::optional<crypto::SchnorrKeyPair> signing_key)
    : participant_id_(std::move(participant_id)),
      cipher_(key),
      nonce_drbg_(SeedBytes(nonce_seed), BytesOf(participant_id_)),
      signing_key_(signing_key) {}

EncryptedRecord DataPackager::Pack(const nn::Image& image, int label) {
  EncryptedRecord record;
  record.participant_id = participant_id_;
  record.label = label;
  record.iv = nonce_drbg_.Generate(crypto::kGcmIvSize);
  const Bytes plaintext = SerializeTrainingInstance(image, label);
  const crypto::GcmSealed sealed =
      cipher_.Seal(record.iv, RecordAad(participant_id_, label), plaintext);
  record.ciphertext = sealed.ciphertext;
  record.tag.assign(sealed.tag.begin(), sealed.tag.end());
  if (signing_key_.has_value()) {
    const Bytes covered = record.SignedPortion();
    record.signature = crypto::SerializeSignature(crypto::SchnorrSign(
        *signing_key_, BytesView(covered.data(), covered.size()),
        nonce_drbg_));
  }
  return record;
}

std::vector<EncryptedRecord> DataPackager::PackAll(
    const LabeledDataset& dataset) {
  std::vector<EncryptedRecord> out;
  out.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out.push_back(Pack(dataset.images[i], dataset.labels[i]));
  }
  return out;
}

std::optional<VerifiedRecord> OpenRecord(const EncryptedRecord& record,
                                         BytesView key) {
  return OpenRecord(record, crypto::AesGcm(key));
}

std::optional<VerifiedRecord> OpenRecord(const EncryptedRecord& record,
                                         const crypto::AesGcm& cipher) {
  if (record.iv.size() != crypto::kGcmIvSize ||
      record.tag.size() != crypto::kGcmTagSize) {
    return std::nullopt;
  }
  std::array<std::uint8_t, crypto::kGcmTagSize> tag{};
  std::copy(record.tag.begin(), record.tag.end(), tag.begin());
  const auto plaintext =
      cipher.Open(record.iv, RecordAad(record.participant_id, record.label),
                  record.ciphertext, tag);
  if (!plaintext.has_value()) return std::nullopt;

  try {
    auto [image, label] = DeserializeTrainingInstance(*plaintext);
    if (label != record.label) return std::nullopt;  // inner/outer mismatch
    VerifiedRecord verified;
    // The plaintext IS the canonical instance serialization, so hashing
    // it directly equals HashTrainingInstance without re-serializing.
    verified.content_hash = crypto::Sha256Hash(*plaintext);
    verified.image = std::move(image);
    verified.label = label;
    verified.participant_id = record.participant_id;
    return verified;
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::vector<std::optional<VerifiedRecord>> OpenRecordsBatch(
    std::span<const EncryptedRecord* const> records,
    std::span<const crypto::AesGcm* const> ciphers) {
  CALTRAIN_REQUIRE(records.size() == ciphers.size(),
                   "record/cipher count mismatch in batch open");
  std::vector<std::optional<VerifiedRecord>> results(records.size());

  // Pass 1: GCM-open and structurally validate each record, keeping the
  // plaintexts of the survivors for the hash batch.
  std::vector<Bytes> plaintexts(records.size());
  std::vector<BytesView> to_hash;
  std::vector<std::size_t> hash_index;
  to_hash.reserve(records.size());
  hash_index.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EncryptedRecord& record = *records[i];
    if (record.iv.size() != crypto::kGcmIvSize ||
        record.tag.size() != crypto::kGcmTagSize) {
      continue;
    }
    std::array<std::uint8_t, crypto::kGcmTagSize> tag{};
    std::copy(record.tag.begin(), record.tag.end(), tag.begin());
    auto plaintext = ciphers[i]->Open(
        record.iv, RecordAad(record.participant_id, record.label),
        record.ciphertext, tag);
    if (!plaintext.has_value()) continue;
    try {
      auto [image, label] = DeserializeTrainingInstance(*plaintext);
      if (label != record.label) continue;  // inner/outer mismatch
      VerifiedRecord verified;
      verified.image = std::move(image);
      verified.label = label;
      verified.participant_id = record.participant_id;
      results[i] = std::move(verified);
      plaintexts[i] = std::move(*plaintext);
      to_hash.emplace_back(plaintexts[i].data(), plaintexts[i].size());
      hash_index.push_back(i);
    } catch (const Error&) {
      // malformed inner blob: rejected
    }
  }

  // Pass 2: all content hashes in one multi-buffer sweep.
  if (!to_hash.empty()) {
    std::vector<crypto::Sha256Digest> digests(to_hash.size());
    crypto::Sha256Batch(
        std::span<const BytesView>(to_hash.data(), to_hash.size()),
        digests.data());
    for (std::size_t k = 0; k < hash_index.size(); ++k) {
      results[hash_index[k]]->content_hash = digests[k];
    }
  }
  return results;
}

}  // namespace caltrain::data
