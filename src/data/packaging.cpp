#include "data/packaging.hpp"

#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::data {

namespace {

Bytes RecordAad(const std::string& participant_id, int label) {
  ByteWriter writer;
  writer.WriteString(participant_id);
  writer.WriteU32(static_cast<std::uint32_t>(label));
  return writer.Take();
}

Bytes SeedBytes(std::uint64_t seed) {
  Bytes out(8);
  StoreLe64(out.data(), seed);
  return out;
}

}  // namespace

Bytes EncryptedRecord::Serialize() const {
  ByteWriter writer;
  writer.WriteString(participant_id);
  writer.WriteU32(static_cast<std::uint32_t>(label));
  writer.WriteBytes(iv);
  writer.WriteBytes(ciphertext);
  writer.WriteBytes(tag);
  return writer.Take();
}

EncryptedRecord EncryptedRecord::Deserialize(BytesView blob) {
  ByteReader reader(blob);
  EncryptedRecord record;
  record.participant_id = reader.ReadString();
  record.label = static_cast<int>(reader.ReadU32());
  record.iv = reader.ReadBytes();
  record.ciphertext = reader.ReadBytes();
  record.tag = reader.ReadBytes();
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes in encrypted record");
  return record;
}

Bytes SerializeTrainingInstance(const nn::Image& image, int label) {
  ByteWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.w));
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.h));
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.c));
  writer.WriteU32(static_cast<std::uint32_t>(label));
  writer.WriteF32Vector(image.pixels);
  return writer.Take();
}

std::pair<nn::Image, int> DeserializeTrainingInstance(BytesView blob) {
  ByteReader reader(blob);
  nn::Shape shape;
  shape.w = static_cast<int>(reader.ReadU32());
  shape.h = static_cast<int>(reader.ReadU32());
  shape.c = static_cast<int>(reader.ReadU32());
  const int label = static_cast<int>(reader.ReadU32());
  nn::Image image(shape);
  image.pixels = reader.ReadF32Vector();
  CALTRAIN_REQUIRE(image.pixels.size() == shape.Flat() && reader.AtEnd(),
                   "malformed training instance blob");
  return {std::move(image), label};
}

crypto::Sha256Digest HashTrainingInstance(const nn::Image& image, int label) {
  return crypto::Sha256Hash(SerializeTrainingInstance(image, label));
}

DataPackager::DataPackager(std::string participant_id, BytesView key,
                           std::uint64_t nonce_seed)
    : participant_id_(std::move(participant_id)),
      cipher_(key),
      nonce_drbg_(SeedBytes(nonce_seed), BytesOf(participant_id_)) {}

EncryptedRecord DataPackager::Pack(const nn::Image& image, int label) {
  EncryptedRecord record;
  record.participant_id = participant_id_;
  record.label = label;
  record.iv = nonce_drbg_.Generate(crypto::kGcmIvSize);
  const Bytes plaintext = SerializeTrainingInstance(image, label);
  const crypto::GcmSealed sealed =
      cipher_.Seal(record.iv, RecordAad(participant_id_, label), plaintext);
  record.ciphertext = sealed.ciphertext;
  record.tag.assign(sealed.tag.begin(), sealed.tag.end());
  return record;
}

std::vector<EncryptedRecord> DataPackager::PackAll(
    const LabeledDataset& dataset) {
  std::vector<EncryptedRecord> out;
  out.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out.push_back(Pack(dataset.images[i], dataset.labels[i]));
  }
  return out;
}

std::optional<VerifiedRecord> OpenRecord(const EncryptedRecord& record,
                                         BytesView key) {
  return OpenRecord(record, crypto::AesGcm(key));
}

std::optional<VerifiedRecord> OpenRecord(const EncryptedRecord& record,
                                         const crypto::AesGcm& cipher) {
  if (record.iv.size() != crypto::kGcmIvSize ||
      record.tag.size() != crypto::kGcmTagSize) {
    return std::nullopt;
  }
  std::array<std::uint8_t, crypto::kGcmTagSize> tag{};
  std::copy(record.tag.begin(), record.tag.end(), tag.begin());
  const auto plaintext =
      cipher.Open(record.iv, RecordAad(record.participant_id, record.label),
                  record.ciphertext, tag);
  if (!plaintext.has_value()) return std::nullopt;

  try {
    auto [image, label] = DeserializeTrainingInstance(*plaintext);
    if (label != record.label) return std::nullopt;  // inner/outer mismatch
    VerifiedRecord verified;
    verified.content_hash = HashTrainingInstance(image, label);
    verified.image = std::move(image);
    verified.label = label;
    verified.participant_id = record.participant_id;
    return verified;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace caltrain::data
