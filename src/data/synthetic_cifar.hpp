// SyntheticCifar: an offline stand-in for CIFAR-10 (see DESIGN.md).
//
// Ten procedurally generated texture/shape classes at the paper's
// 28x28x3 input size.  Each class couples an orientation, a base hue and
// a pattern family; per-sample jitter (phase, position, noise,
// illumination) makes the problem non-trivial while keeping it
// learnable by the Table I/II topologies within a few epochs — which is
// what Experiments I-III need (accuracy convergence shape, not CIFAR's
// absolute numbers).
#pragma once

#include "data/dataset.hpp"

namespace caltrain::data {

struct SyntheticCifarOptions {
  int classes = 10;
  nn::Shape shape{28, 28, 3};
  float noise_stddev = 0.06F;
};

class SyntheticCifar {
 public:
  explicit SyntheticCifar(SyntheticCifarOptions options = {});

  /// Generates one sample of class `label` using `rng` for jitter.
  [[nodiscard]] nn::Image Sample(int label, Rng& rng) const;

  /// Generates a balanced labeled dataset of `count` samples.
  [[nodiscard]] LabeledDataset Generate(std::size_t count, Rng& rng) const;

  [[nodiscard]] int classes() const noexcept { return options_.classes; }
  [[nodiscard]] nn::Shape shape() const noexcept { return options_.shape; }

 private:
  SyntheticCifarOptions options_;
};

}  // namespace caltrain::data
