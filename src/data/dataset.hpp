// Dataset containers and helpers shared by the synthetic generators,
// the attack harness, and the training pipeline.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace caltrain::data {

/// A labeled image set.  `sources[i]` names the contributing participant
/// (the S component of the linkage tuple); empty when not yet assigned.
struct LabeledDataset {
  std::vector<nn::Image> images;
  std::vector<int> labels;
  std::vector<std::string> sources;

  [[nodiscard]] std::size_t size() const noexcept { return images.size(); }

  void Append(nn::Image image, int label, std::string source = {});
  /// Concatenates another dataset.
  void Merge(const LabeledDataset& other);
  /// In-place deterministic shuffle keeping images/labels/sources aligned.
  void Shuffle(Rng& rng);
};

/// Splits `dataset` into `parts` near-equal chunks (for distributing a
/// corpus among training participants).
[[nodiscard]] std::vector<LabeledDataset> SplitAmong(
    const LabeledDataset& dataset, std::size_t parts);

/// Tags every record of `dataset` with `source`.
void AssignSource(LabeledDataset& dataset, const std::string& source);

}  // namespace caltrain::data
