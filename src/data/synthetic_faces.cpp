#include "data/synthetic_faces.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caltrain::data {

SyntheticFaces::SyntheticFaces(SyntheticFacesOptions options)
    : options_(options) {
  CALTRAIN_REQUIRE(options_.identities >= 2 && options_.identities <= 64,
                   "identities must be in [2, 64]");
  CALTRAIN_REQUIRE(options_.shape.c == 3, "SyntheticFaces generates RGB");
  Rng rng(options_.identity_seed);
  for (int i = 0; i < options_.identities; ++i) {
    IdentityParams& p = params_[i];
    p.skin_r = rng.UniformFloat(0.45F, 0.95F);
    p.skin_g = p.skin_r * rng.UniformFloat(0.70F, 0.92F);
    p.skin_b = p.skin_g * rng.UniformFloat(0.65F, 0.95F);
    p.face_w = rng.UniformFloat(0.28F, 0.40F);
    p.face_h = rng.UniformFloat(0.34F, 0.46F);
    p.eye_dx = rng.UniformFloat(0.10F, 0.18F);
    p.eye_y = rng.UniformFloat(0.38F, 0.46F);
    p.eye_size = rng.UniformFloat(0.025F, 0.05F);
    p.mouth_curve = rng.UniformFloat(-0.08F, 0.08F);
    p.mouth_y = rng.UniformFloat(0.62F, 0.70F);
    p.hair_shade = rng.UniformFloat(0.05F, 0.5F);
    p.brow_tilt = rng.UniformFloat(-0.04F, 0.04F);
  }
}

nn::Image SyntheticFaces::Sample(int identity, Rng& rng) const {
  CALTRAIN_REQUIRE(identity >= 0 && identity < options_.identities,
                   "identity out of range");
  const IdentityParams& p = params_[identity];
  const nn::Shape shape = options_.shape;
  nn::Image img(shape);

  // Per-sample jitter: pose shift, illumination, expression.
  const float shift_x = 0.03F * rng.Gaussian();
  const float shift_y = 0.03F * rng.Gaussian();
  const float light = rng.UniformFloat(0.85F, 1.15F);
  const float expression = p.mouth_curve + 0.03F * rng.Gaussian();
  const float bg = rng.UniformFloat(0.1F, 0.35F);

  const float cx = 0.5F + shift_x;
  const float cy = 0.52F + shift_y;

  for (int y = 0; y < shape.h; ++y) {
    for (int x = 0; x < shape.w; ++x) {
      const float u = static_cast<float>(x) / static_cast<float>(shape.w);
      const float v = static_cast<float>(y) / static_cast<float>(shape.h);
      float r = bg, g = bg, b = bg * 1.1F;

      // Hair: band above the face ellipse.
      const float hair_extent =
          ((u - cx) * (u - cx)) / ((p.face_w * 1.15F) * (p.face_w * 1.15F)) +
          ((v - cy + 0.08F) * (v - cy + 0.08F)) /
              ((p.face_h * 1.2F) * (p.face_h * 1.2F));
      if (hair_extent < 1.0F) {
        r = g = b = p.hair_shade;
      }

      // Face ellipse.
      const float fe = ((u - cx) * (u - cx)) / (p.face_w * p.face_w) +
                       ((v - cy) * (v - cy)) / (p.face_h * p.face_h);
      if (fe < 1.0F) {
        r = p.skin_r;
        g = p.skin_g;
        b = p.skin_b;

        // Eyes (dark ellipses).
        for (int side = -1; side <= 1; side += 2) {
          const float ex = cx + static_cast<float>(side) * p.eye_dx;
          const float ey = cy - 0.52F + p.eye_y;
          const float de = ((u - ex) * (u - ex) + (v - ey) * (v - ey)) /
                           (p.eye_size * p.eye_size);
          if (de < 1.0F) {
            r = g = b = 0.08F;
          }
          // Brows: thin tilted dark strip above each eye.
          const float brow_y =
              ey - 1.8F * p.eye_size +
              p.brow_tilt * static_cast<float>(side) * (u - ex) * 10.0F;
          if (std::abs(v - brow_y) < 0.012F &&
              std::abs(u - ex) < 2.0F * p.eye_size) {
            r = g = b = 0.15F;
          }
        }

        // Mouth: curved dark arc.
        const float my = cy - 0.52F + p.mouth_y +
                         expression * (u - cx) * (u - cx) * 40.0F;
        if (std::abs(v - my) < 0.015F && std::abs(u - cx) < 0.11F) {
          r = 0.45F;
          g = 0.15F;
          b = 0.15F;
        }
      }

      const float noise = options_.noise_stddev * rng.Gaussian();
      img.At(0, y, x) = std::clamp(r * light + noise, 0.0F, 1.0F);
      img.At(1, y, x) = std::clamp(g * light + noise, 0.0F, 1.0F);
      img.At(2, y, x) = std::clamp(b * light + noise, 0.0F, 1.0F);
    }
  }
  return img;
}

LabeledDataset SyntheticFaces::Generate(std::size_t count, Rng& rng) const {
  LabeledDataset out;
  out.images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int identity = static_cast<int>(
        i % static_cast<std::size_t>(options_.identities));
    out.Append(Sample(identity, rng), identity);
  }
  out.Shuffle(rng);
  return out;
}

LabeledDataset SyntheticFaces::GenerateForIdentity(int identity,
                                                   std::size_t count,
                                                   Rng& rng) const {
  LabeledDataset out;
  out.images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.Append(Sample(identity, rng), identity);
  }
  return out;
}

}  // namespace caltrain::data
