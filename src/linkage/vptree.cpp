#include "linkage/vptree.hpp"

#include <algorithm>
#include <cmath>

#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace caltrain::linkage {

namespace {

bool FartherFirst(const Neighbor& a, const Neighbor& b) {
  // Max-heap by (distance, index): the top is the current *worst*
  // candidate, ties resolved toward the larger index, so equal-distance
  // lower-index points win — matching BruteForceKnn's (distance, index)
  // order (and, at the database layer, (distance, id)).
  return a.distance < b.distance ||
         (a.distance == b.distance && a.index < b.index);
}

}  // namespace

VpTree::VpTree(std::vector<std::vector<float>> points)
    : points_(std::move(points)) {
  if (points_.empty()) return;
  const std::size_t dim = points_[0].size();
  for (const auto& p : points_) {
    CALTRAIN_REQUIRE(p.size() == dim, "inconsistent point dimensions");
  }
  std::vector<std::size_t> indices(points_.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  nodes_.reserve(points_.size());
  root_ = Build(indices, 0, indices.size());
}

int VpTree::Build(std::vector<std::size_t>& indices, std::size_t lo,
                  std::size_t hi) {
  if (lo >= hi) return -1;
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  // Vantage point: first element (indices arrive shuffled enough from
  // recursive partitioning; determinism matters more than balance here).
  const std::size_t vp = indices[lo];
  nodes_[static_cast<std::size_t>(node_id)].point_index = vp;
  if (hi - lo == 1) return node_id;

  // Partition remaining points by median distance to the vantage point.
  const std::size_t mid = (lo + 1 + hi) / 2;
  std::nth_element(indices.begin() + static_cast<std::ptrdiff_t>(lo + 1),
                   indices.begin() + static_cast<std::ptrdiff_t>(mid),
                   indices.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::size_t a, std::size_t b) {
                     return L2Distance(points_[a], points_[vp]) <
                            L2Distance(points_[b], points_[vp]);
                   });
  const double radius = L2Distance(points_[indices[mid]], points_[vp]);
  const int inside = Build(indices, lo + 1, mid);
  const int outside = Build(indices, mid, hi);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.radius = radius;
  node.inside = inside;
  node.outside = outside;
  return node_id;
}

void VpTree::SearchNode(
    int node_id, const std::vector<float>& query, std::size_t k,
    std::priority_queue<Neighbor, std::vector<Neighbor>,
                        bool (*)(const Neighbor&, const Neighbor&)>& best,
    double& tau) const {
  if (node_id < 0) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  const double dist = L2Distance(points_[node.point_index], query);

  if (best.size() < k) {
    best.push(Neighbor{node.point_index, dist});
    if (best.size() == k) tau = best.top().distance;
  } else {
    // Replace the current worst when strictly closer, or when equally
    // distant with a smaller index (deterministic tie-break; the
    // pruning bounds below use >=/<= so equal-distance candidates in
    // sibling subtrees are still visited).
    const Neighbor& worst = best.top();
    if (dist < worst.distance ||
        (dist == worst.distance && node.point_index < worst.index)) {
      best.pop();
      best.push(Neighbor{node.point_index, dist});
      tau = best.top().distance;
    }
  }

  if (node.inside < 0 && node.outside < 0) return;

  if (dist < node.radius) {
    SearchNode(node.inside, query, k, best, tau);
    if (dist + tau >= node.radius || best.size() < k) {
      SearchNode(node.outside, query, k, best, tau);
    }
  } else {
    SearchNode(node.outside, query, k, best, tau);
    if (dist - tau <= node.radius || best.size() < k) {
      SearchNode(node.inside, query, k, best, tau);
    }
  }
}

std::vector<Neighbor> VpTree::Search(const std::vector<float>& query,
                                     std::size_t k) const {
  std::vector<Neighbor> result;
  if (points_.empty() || k == 0) return result;
  std::priority_queue<Neighbor, std::vector<Neighbor>,
                      bool (*)(const Neighbor&, const Neighbor&)>
      best(FartherFirst);
  double tau = std::numeric_limits<double>::infinity();
  SearchNode(root_, query, k, best, tau);
  result.resize(best.size());
  for (std::size_t i = result.size(); i-- > 0;) {
    result[i] = best.top();
    best.pop();
  }
  return result;
}

std::vector<std::vector<Neighbor>> VpTree::SearchBatch(
    const std::vector<std::vector<float>>& queries, std::size_t k) const {
  std::vector<std::vector<Neighbor>> results(queries.size());
  util::ParallelFor(0, queries.size(), [&](std::size_t i) {
    results[i] = Search(queries[i], k);
  });
  return results;
}

std::vector<Neighbor> BruteForceKnn(
    const std::vector<std::vector<float>>& points,
    const std::vector<float>& query, std::size_t k) {
  std::vector<Neighbor> all(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    all[i] = Neighbor{i, L2Distance(points[i], query)};
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(take), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.index < b.index);
                    });
  all.resize(take);
  return all;
}

}  // namespace caltrain::linkage
