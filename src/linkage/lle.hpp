// Locally Linear Embedding (Roweis & Saul), used by the Fig. 7
// visualization: the 2622-d face fingerprints are reduced to 2-D so the
// normal / trojaned-train / trojaned-test cluster structure is visible.
//
// Standard three-step LLE: k-NN graph, locally-optimal reconstruction
// weights (regularized Gram solve), then the bottom non-constant
// eigenvectors of (I-W)^T (I-W) via a Jacobi eigensolver.
#pragma once

#include <cstddef>
#include <vector>

namespace caltrain::linkage {

struct LleOptions {
  std::size_t neighbors = 10;
  std::size_t out_dims = 2;
  double regularization = 1e-3;  ///< Gram conditioning (scaled by trace)
};

/// Embeds `points` (n x d) into `out_dims` dimensions; returns n rows of
/// out_dims coordinates.  Requires n > neighbors + out_dims.
[[nodiscard]] std::vector<std::vector<double>> LocallyLinearEmbedding(
    const std::vector<std::vector<float>>& points, const LleOptions& options);

/// Dense symmetric eigen-decomposition by cyclic Jacobi rotations.
/// `matrix` is n*n row-major and is destroyed.  Returns eigenvalues
/// ascending; `eigenvectors[k]` is the unit eigenvector of
/// eigenvalue k (length n).  Exposed for testing.
struct EigenResult {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
};
[[nodiscard]] EigenResult JacobiEigenSymmetric(std::vector<double> matrix,
                                               std::size_t n,
                                               int max_sweeps = 64);

/// Solves the dense linear system A x = b (n x n, row-major) by Gaussian
/// elimination with partial pivoting.  Exposed for testing.
[[nodiscard]] std::vector<double> SolveLinearSystem(std::vector<double> a,
                                                    std::vector<double> b,
                                                    std::size_t n);

}  // namespace caltrain::linkage
