#include "linkage/metrics.hpp"

#include "util/error.hpp"

namespace caltrain::linkage {

AccountabilityEval EvaluateAccountability(
    const std::vector<std::vector<QueryMatch>>& per_probe_matches,
    const ProvenanceMap& provenance, const std::string& malicious_source) {
  AccountabilityEval eval;
  eval.probes = per_probe_matches.size();
  if (eval.probes == 0) return eval;

  std::size_t bad_retrieved = 0;
  std::size_t probes_with_poison = 0;
  std::size_t probes_attributed = 0;

  for (const auto& matches : per_probe_matches) {
    bool saw_poison = false;
    std::size_t malicious_hits = 0;
    for (const QueryMatch& match : matches) {
      ++eval.retrieved;
      const auto it = provenance.find(match.id);
      const ProvenanceTag tag =
          it == provenance.end() ? ProvenanceTag::kNormal : it->second;
      if (tag != ProvenanceTag::kNormal) ++bad_retrieved;
      if (tag == ProvenanceTag::kPoisoned) saw_poison = true;
      if (match.source == malicious_source) ++malicious_hits;
    }
    if (saw_poison) ++probes_with_poison;
    if (!matches.empty() && malicious_hits * 2 > matches.size()) {
      ++probes_attributed;
    }
  }

  if (eval.retrieved > 0) {
    eval.precision_bad =
        static_cast<double>(bad_retrieved) / static_cast<double>(eval.retrieved);
  }
  eval.recall_poisoned = static_cast<double>(probes_with_poison) /
                         static_cast<double>(eval.probes);
  eval.source_attribution = static_cast<double>(probes_attributed) /
                            static_cast<double>(eval.probes);
  return eval;
}

}  // namespace caltrain::linkage
