#include "linkage/linkage_db.hpp"

#include <algorithm>

#include "data/packaging.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caltrain::linkage {

std::uint64_t LinkageDatabase::Insert(Fingerprint fingerprint, int label,
                                      std::string source,
                                      const crypto::Sha256Digest& hash) {
  CALTRAIN_REQUIRE(!fingerprint.empty(), "empty fingerprint");
  LinkageTuple tuple;
  tuple.id = tuples_.size();
  tuple.fingerprint = std::move(fingerprint);
  tuple.label = label;
  tuple.source = std::move(source);
  tuple.hash = hash;
  tuples_.push_back(std::move(tuple));
  indexes_dirty_ = true;
  return tuples_.back().id;
}

const LinkageTuple& LinkageDatabase::tuple(std::uint64_t id) const {
  CALTRAIN_REQUIRE(id < tuples_.size(), "unknown linkage tuple id");
  return tuples_[id];
}

LinkageDatabase::ClassIndex& LinkageDatabase::EnsureIndex(int label) {
  if (indexes_dirty_) {
    indexes_.clear();
    indexes_dirty_ = false;
  }
  auto it = indexes_.find(label);
  if (it == indexes_.end()) {
    ClassIndex index;
    std::vector<std::vector<float>> points;
    for (const LinkageTuple& t : tuples_) {
      if (t.label != label) continue;
      index.ids.push_back(t.id);
      points.push_back(t.fingerprint);
    }
    index.tree = std::make_unique<VpTree>(std::move(points));
    it = indexes_.emplace(label, std::move(index)).first;
  }
  return it->second;
}

std::vector<QueryMatch> LinkageDatabase::QueryIndex(const ClassIndex& index,
                                                    const Fingerprint& query,
                                                    std::size_t k) const {
  const std::vector<Neighbor> neighbors = index.tree->Search(query, k);
  std::vector<QueryMatch> matches;
  matches.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) {
    const LinkageTuple& t = tuples_[index.ids[n.index]];
    matches.push_back(QueryMatch{t.id, n.distance, t.label, t.source});
  }
  return matches;
}

std::vector<QueryMatch> LinkageDatabase::QueryNearest(const Fingerprint& query,
                                                      int label,
                                                      std::size_t k) {
  return QueryIndex(EnsureIndex(label), query, k);
}

std::vector<std::vector<QueryMatch>> LinkageDatabase::QueryNearestBatch(
    const std::vector<Fingerprint>& queries, const std::vector<int>& labels,
    std::size_t k) {
  CALTRAIN_REQUIRE(queries.size() == labels.size(),
                   "batch query/label size mismatch");
  // Index construction mutates the database, so it happens serially
  // before the (read-only) parallel query phase.
  for (int label : labels) (void)EnsureIndex(label);

  std::vector<std::vector<QueryMatch>> results(queries.size());
  util::ParallelFor(0, queries.size(), [&](std::size_t i) {
    results[i] = QueryIndex(indexes_.at(labels[i]), queries[i], k);
  });
  return results;
}

std::vector<QueryMatch> LinkageDatabase::QueryNearestBruteForce(
    const Fingerprint& query, int label, std::size_t k) const {
  std::vector<QueryMatch> all;
  for (const LinkageTuple& t : tuples_) {
    if (t.label != label) continue;
    all.push_back(QueryMatch{t.id, FingerprintDistance(t.fingerprint, query),
                             t.label, t.source});
  }
  std::sort(all.begin(), all.end(), [](const QueryMatch& a,
                                       const QueryMatch& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.id < b.id);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

bool LinkageDatabase::VerifySubmission(std::uint64_t id,
                                       const nn::Image& image,
                                       int label) const {
  const LinkageTuple& t = tuple(id);
  const crypto::Sha256Digest digest =
      data::HashTrainingInstance(image, label);
  return ConstantTimeEqual(BytesView(digest.data(), digest.size()),
                           BytesView(t.hash.data(), t.hash.size()));
}

std::vector<std::uint64_t> LinkageDatabase::IdsForLabel(int label) const {
  std::vector<std::uint64_t> ids;
  for (const LinkageTuple& t : tuples_) {
    if (t.label == label) ids.push_back(t.id);
  }
  return ids;
}

Bytes LinkageDatabase::Serialize() const {
  ByteWriter writer;
  writer.WriteU64(tuples_.size());
  for (const LinkageTuple& t : tuples_) {
    writer.WriteF32Vector(t.fingerprint);
    writer.WriteU32(static_cast<std::uint32_t>(t.label));
    writer.WriteString(t.source);
    writer.WriteBytes(BytesView(t.hash.data(), t.hash.size()));
  }
  return writer.Take();
}

LinkageDatabase LinkageDatabase::Deserialize(BytesView blob) {
  ByteReader reader(blob);
  LinkageDatabase db;
  const std::uint64_t count = reader.ReadU64();
  for (std::uint64_t i = 0; i < count; ++i) {
    Fingerprint fp = reader.ReadF32Vector();
    const int label = static_cast<int>(reader.ReadU32());
    std::string source = reader.ReadString();
    const Bytes hash = reader.ReadBytes();
    CALTRAIN_REQUIRE(hash.size() == crypto::kSha256DigestSize,
                     "bad hash size in linkage blob");
    crypto::Sha256Digest digest{};
    std::copy(hash.begin(), hash.end(), digest.begin());
    (void)db.Insert(std::move(fp), label, std::move(source), digest);
  }
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes in linkage blob");
  return db;
}

}  // namespace caltrain::linkage
