#include "linkage/linkage_db.hpp"

#include <algorithm>
#include <utility>

#include "data/packaging.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/threadpool.hpp"

namespace caltrain::linkage {

namespace {

void ValidateRecord(const Fingerprint& fingerprint, int label) {
  CALTRAIN_REQUIRE(!fingerprint.empty(), "empty fingerprint");
  // The serialized form stores Y as uint32; reject out-of-range labels
  // at the door instead of corrupting them at Serialize time.
  CALTRAIN_REQUIRE(label >= 0, "negative class label");
}

bool MatchOrder(const QueryMatch& a, const QueryMatch& b) {
  return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
}

}  // namespace

LinkageDatabase::LinkageDatabase(LinkageDatabase&& other) noexcept
    : segments_(std::move(other.segments_)),
      locator_(std::move(other.locator_)),
      tail_limit_(other.tail_limit_) {}

LinkageDatabase& LinkageDatabase::operator=(LinkageDatabase&& other) noexcept {
  if (this == &other) return *this;
  // Moves require external exclusivity over both objects (as for any
  // std container); the locks below turn a violation of that contract
  // into a wait instead of a race, and satisfy the guarded-member
  // annotations.  Fixed source-then-destination order — concurrent
  // cross-assignments of the same pair are outside the contract.
  util::MutexLock other_lock(other.directory_mu_);
  util::MutexLock this_lock(directory_mu_);
  segments_ = std::move(other.segments_);
  locator_ = std::move(other.locator_);
  tail_limit_ = other.tail_limit_;
  return *this;
}

std::uint64_t LinkageDatabase::Insert(Fingerprint fingerprint, int label,
                                      std::string source,
                                      const crypto::Sha256Digest& hash) {
  ValidateRecord(fingerprint, label);
  Segment* segment = nullptr;
  std::uint64_t id = 0;
  std::size_t pos = 0;
  {
    util::MutexLock lock(directory_mu_);
    id = locator_.size();
    segment = EnsureSegmentLocked(label);
    pos = segment->reserved++;
    locator_.push_back(Location{segment, pos});
  }
  {
    util::MutexLock lock(segment->mu);
    // Waits only when a concurrent InsertBatch reserved an earlier,
    // still-unlanded slot in this segment; uncontended inserts append
    // immediately.
    while (segment->tuples.size() != pos) segment->appended.Wait(lock);
    LinkageTuple tuple;
    tuple.id = id;
    tuple.fingerprint = std::move(fingerprint);
    tuple.label = label;
    tuple.source = std::move(source);
    tuple.hash = hash;
    segment->tuples.push_back(std::move(tuple));
  }
  segment->appended.NotifyAll();
  return id;
}

std::vector<std::uint64_t> LinkageDatabase::InsertBatch(
    std::vector<LinkageRecord> records) {
  const std::size_t n = records.size();
  std::vector<std::uint64_t> ids(n);
  if (n == 0) return ids;
  for (const LinkageRecord& r : records) {
    ValidateRecord(r.fingerprint, r.label);
  }

  // Phase 1 (serial, under the directory lock): assign ids and segment
  // slots in input order.  This fixes every tuple's id and position
  // before any parallel work, so the database contents are identical
  // to a serial Insert loop at any thread count.
  struct Group {
    Segment* segment = nullptr;
    std::size_t first_pos = 0;           ///< reserved slot of items[0]
    std::vector<std::size_t> items;      ///< record indices, ascending
  };
  std::vector<Group> groups;
  {
    util::MutexLock lock(directory_mu_);
    const std::uint64_t base = locator_.size();
    std::unordered_map<int, std::size_t> group_of;
    locator_.reserve(locator_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      Segment* segment = EnsureSegmentLocked(records[i].label);
      const auto [it, fresh] =
          group_of.try_emplace(records[i].label, groups.size());
      if (fresh) groups.push_back(Group{segment, segment->reserved, {}});
      groups[it->second].items.push_back(i);
      locator_.push_back(Location{segment, segment->reserved++});
      ids[i] = base + static_cast<std::uint64_t>(i);
    }
  }

  // Phase 2: append each class's tuples under its own segment lock —
  // distinct classes proceed concurrently.  Appends land in
  // reservation order, keeping every segment in ascending-id order: a
  // group whose segment still misses an *earlier* reservation (only
  // possible with a concurrent InsertBatch from another thread) is
  // deferred and retried on the calling thread below, so pool workers
  // never block on another call's progress.
  const auto append_group = [&](const Group& group) {
    Segment& seg = *group.segment;
    // Callers hold seg.mu; restate it for the analysis (capabilities do
    // not propagate into lambda bodies).
    seg.mu.AssertHeld();
    for (const std::size_t i : group.items) {
      LinkageTuple tuple;
      tuple.id = ids[i];
      tuple.fingerprint = std::move(records[i].fingerprint);
      tuple.label = records[i].label;
      tuple.source = std::move(records[i].source);
      tuple.hash = records[i].hash;
      seg.tuples.push_back(std::move(tuple));
    }
  };
  std::vector<std::uint8_t> done(groups.size(), 0);
  util::ParallelFor(0, groups.size(), [&](std::size_t g) {
    Segment& seg = *groups[g].segment;
    util::MutexLock lock(seg.mu);
    if (seg.tuples.size() != groups[g].first_pos) return;  // deferred
    append_group(groups[g]);
    lock.Unlock();
    seg.appended.NotifyAll();
    done[g] = 1;
  });
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (done[g] != 0) continue;
    Segment& seg = *groups[g].segment;
    util::MutexLock lock(seg.mu);
    while (seg.tuples.size() != groups[g].first_pos) seg.appended.Wait(lock);
    append_group(groups[g]);
    lock.Unlock();
    seg.appended.NotifyAll();
  }
  return ids;
}

std::size_t LinkageDatabase::size() const {
  util::MutexLock lock(directory_mu_);
  return locator_.size();
}

const LinkageTuple& LinkageDatabase::tuple(std::uint64_t id) const {
  Location loc;
  {
    util::MutexLock lock(directory_mu_);
    CALTRAIN_REQUIRE(id < locator_.size(), "unknown linkage tuple id");
    loc = locator_[id];
  }
  util::MutexLock lock(loc.segment->mu);
  CALTRAIN_REQUIRE(loc.pos < loc.segment->tuples.size(),
                   "linkage tuple not yet visible");
  // Deque references stay valid across appends, and tuples are never
  // mutated after insertion, so the reference outlives the lock.
  return loc.segment->tuples[loc.pos];
}

LinkageDatabase::Segment* LinkageDatabase::EnsureSegmentLocked(int label) {
  auto it = segments_.find(label);
  if (it == segments_.end()) {
    auto segment = std::make_unique<Segment>();
    segment->label = label;
    it = segments_.emplace(label, std::move(segment)).first;
  }
  return it->second.get();
}

LinkageDatabase::Segment* LinkageDatabase::FindSegment(int label) const {
  util::MutexLock lock(directory_mu_);
  const auto it = segments_.find(label);
  return it == segments_.end() ? nullptr : it->second.get();
}

void LinkageDatabase::RebuildSegmentLocked(Segment& seg) {
  if (seg.index != nullptr && seg.indexed == seg.tuples.size()) return;
  std::vector<std::vector<float>> points;
  std::vector<std::uint64_t> ids;
  std::vector<std::string> sources;
  points.reserve(seg.tuples.size());
  ids.reserve(seg.tuples.size());
  sources.reserve(seg.tuples.size());
  for (const LinkageTuple& t : seg.tuples) {
    points.push_back(t.fingerprint);
    ids.push_back(t.id);
    sources.push_back(t.source);
  }
  auto index = std::make_shared<SegmentIndex>(std::move(points));
  index->ids = std::move(ids);
  index->sources = std::move(sources);
  seg.indexed = seg.tuples.size();
  seg.index = std::move(index);
  ++seg.generation;
}

std::vector<QueryMatch> LinkageDatabase::QuerySegment(
    Segment& seg, const Fingerprint& query, std::size_t k,
    bool allow_rebuild) const {
  std::vector<QueryMatch> matches;
  std::shared_ptr<const SegmentIndex> index;
  {
    util::MutexLock lock(seg.mu);
    if (allow_rebuild &&
        (seg.index == nullptr ||
         seg.tuples.size() - seg.indexed > tail_limit_)) {
      RebuildSegmentLocked(seg);
    }
    index = seg.index;
    // Brute-force the unindexed tail under the lock (it is bounded by
    // tail_limit_); the tree snapshot is searched lock-free below.
    for (std::size_t pos = seg.indexed; pos < seg.tuples.size(); ++pos) {
      const LinkageTuple& t = seg.tuples[pos];
      matches.push_back(QueryMatch{
          t.id, FingerprintDistance(t.fingerprint, query), t.label, t.source});
    }
  }
  if (index != nullptr) {
    const std::vector<Neighbor> neighbors = index->tree.Search(query, k);
    for (const Neighbor& n : neighbors) {
      matches.push_back(QueryMatch{index->ids[n.index], n.distance, seg.label,
                                   index->sources[n.index]});
    }
  }
  // The tree already returns its k best in (distance, index) ==
  // (distance, id) order; merging with the tail and re-sorting yields
  // the exact global top-k with (distance, id) tie-breaking — the same
  // order as QueryNearestBruteForce.
  std::sort(matches.begin(), matches.end(), MatchOrder);
  if (matches.size() > k) matches.resize(k);
  return matches;
}

std::vector<QueryMatch> LinkageDatabase::QueryNearest(const Fingerprint& query,
                                                      int label,
                                                      std::size_t k) {
  Segment* seg = FindSegment(label);
  if (seg == nullptr) return {};
  return QuerySegment(*seg, query, k, /*allow_rebuild=*/true);
}

std::vector<std::vector<QueryMatch>> LinkageDatabase::QueryNearestBatch(
    const std::vector<Fingerprint>& queries, const std::vector<int>& labels,
    std::size_t k) {
  CALTRAIN_REQUIRE(queries.size() == labels.size(),
                   "batch query/label size mismatch");
  // Fold the queried classes' tails in first (parallel across
  // segments), then answer the queries in parallel over the immutable
  // index snapshots.  Only the distinct labels of this batch are
  // touched — results are identical either way (the tail scan keeps
  // unfolded segments exact), this just avoids building indexes no
  // query needs.
  std::unordered_map<int, Segment*> needed;  // distinct queried classes
  {
    util::MutexLock lock(directory_mu_);
    for (const int label : labels) {
      const auto it = segments_.find(label);
      needed.emplace(label, it == segments_.end() ? nullptr
                                                  : it->second.get());
    }
  }
  std::vector<Segment*> to_fold;
  for (const auto& [label, seg] : needed) {
    if (seg != nullptr) to_fold.push_back(seg);
  }
  util::ParallelFor(0, to_fold.size(), [&](std::size_t i) {
    util::MutexLock lock(to_fold[i]->mu);
    RebuildSegmentLocked(*to_fold[i]);
  });
  // The query loop reads segments through the prefold's snapshot — no
  // per-query directory lock.
  std::vector<std::vector<QueryMatch>> results(queries.size());
  util::ParallelFor(0, queries.size(), [&](std::size_t i) {
    Segment* seg = needed.at(labels[i]);
    if (seg != nullptr) {
      results[i] = QuerySegment(*seg, queries[i], k, /*allow_rebuild=*/false);
    }
  });
  return results;
}

std::vector<QueryMatch> LinkageDatabase::QueryNearestBruteForce(
    const Fingerprint& query, int label, std::size_t k) const {
  Segment* seg = FindSegment(label);
  if (seg == nullptr) return {};
  std::vector<QueryMatch> all;
  {
    util::MutexLock lock(seg->mu);
    all.reserve(seg->tuples.size());
    for (const LinkageTuple& t : seg->tuples) {
      all.push_back(QueryMatch{t.id, FingerprintDistance(t.fingerprint, query),
                               t.label, t.source});
    }
  }
  std::sort(all.begin(), all.end(), MatchOrder);
  if (all.size() > k) all.resize(k);
  return all;
}

void LinkageDatabase::RebuildIndexes() {
  std::vector<Segment*> segments;
  {
    util::MutexLock lock(directory_mu_);
    segments.reserve(segments_.size());
    for (const auto& [label, seg] : segments_) segments.push_back(seg.get());
  }
  // Stable order for the fan-out (segments are independent, so this
  // only affects scheduling, not results).
  std::sort(segments.begin(), segments.end(),
            [](const Segment* a, const Segment* b) {
              return a->label < b->label;
            });
  util::ParallelFor(0, segments.size(), [&](std::size_t i) {
    util::MutexLock lock(segments[i]->mu);
    RebuildSegmentLocked(*segments[i]);
  });
}

std::uint64_t LinkageDatabase::IndexGeneration(int label) const {
  Segment* seg = FindSegment(label);
  if (seg == nullptr) return 0;
  util::MutexLock lock(seg->mu);
  return seg->generation;
}

std::size_t LinkageDatabase::UnindexedTailSize(int label) const {
  Segment* seg = FindSegment(label);
  if (seg == nullptr) return 0;
  util::MutexLock lock(seg->mu);
  return seg->tuples.size() - seg->indexed;
}

bool LinkageDatabase::VerifySubmission(std::uint64_t id,
                                       const nn::Image& image,
                                       int label) const {
  const LinkageTuple& t = tuple(id);
  const crypto::Sha256Digest digest =
      data::HashTrainingInstance(image, label);
  return ConstantTimeEqual(BytesView(digest.data(), digest.size()),
                           BytesView(t.hash.data(), t.hash.size()));
}

std::vector<std::uint64_t> LinkageDatabase::IdsForLabel(int label) const {
  Segment* seg = FindSegment(label);
  if (seg == nullptr) return {};
  util::MutexLock lock(seg->mu);
  std::vector<std::uint64_t> ids;
  ids.reserve(seg->tuples.size());
  for (const LinkageTuple& t : seg->tuples) ids.push_back(t.id);
  return ids;
}

Bytes LinkageDatabase::Serialize() const {
  ByteWriter writer;
  util::MutexLock lock(directory_mu_);
  // Fail cleanly (instead of racing the appenders) if a concurrent
  // insert still has reserved-but-unlanded slots.
  for (const auto& [label, seg] : segments_) {
    util::MutexLock seg_lock(seg->mu);
    CALTRAIN_REQUIRE(seg->tuples.size() == seg->reserved,
                     "Serialize during in-flight insert");
  }
  writer.WriteU64(locator_.size());
  for (const Location& loc : locator_) {
    // Lock the owning segment for the tuple read: the quiescence check
    // above makes contention impossible, but the unlocked read was
    // still a data race on the deque's internals if the check ever
    // raced an appender (caught by the thread-safety annotation pass).
    util::MutexLock seg_lock(loc.segment->mu);
    const LinkageTuple& t = loc.segment->tuples[loc.pos];
    writer.WriteF32Vector(t.fingerprint);
    writer.WriteU32(static_cast<std::uint32_t>(t.label));
    writer.WriteString(t.source);
    writer.WriteBytes(BytesView(t.hash.data(), t.hash.size()));
  }
  return writer.Take();
}

LinkageDatabase LinkageDatabase::Deserialize(BytesView blob) {
  ByteReader reader(blob);
  LinkageDatabase db;
  const std::uint64_t count = reader.ReadU64();
  std::vector<LinkageRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    LinkageRecord record;
    record.fingerprint = reader.ReadF32Vector();
    record.label = static_cast<int>(reader.ReadU32());
    record.source = reader.ReadString();
    const Bytes hash = reader.ReadBytes();
    CALTRAIN_REQUIRE(hash.size() == crypto::kSha256DigestSize,
                     "bad hash size in linkage blob");
    std::copy(hash.begin(), hash.end(), record.hash.begin());
    records.push_back(std::move(record));
  }
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes in linkage blob");
  (void)db.InsertBatch(std::move(records));
  return db;
}

}  // namespace caltrain::linkage
