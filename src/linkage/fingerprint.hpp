// Fingerprint extraction (paper Sec. IV-C).
//
// The fingerprint F of a training instance is its L2-normalized feature
// embedding at the penultimate layer (the layer before softmax) of the
// trained model.  Fingerprints support distance queries but are one-way:
// without the (encrypted, enclave-held) FrontNet an adversary cannot
// run input-reconstruction techniques against them.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace caltrain::linkage {

using Fingerprint = std::vector<float>;

/// Extracts the normalized penultimate-layer embedding of `image`.
[[nodiscard]] Fingerprint ExtractFingerprint(nn::Network& net,
                                             const nn::Image& image);

/// Extracts a normalized embedding from an arbitrary layer.  The paper
/// fingerprints the penultimate layer; for networks with few classes a
/// wider feature layer carries more within-class structure (see the
/// fingerprint-layer ablation bench).
[[nodiscard]] Fingerprint ExtractFingerprintAt(nn::Network& net,
                                               const nn::Image& image,
                                               int layer);

/// Thread-safe variant: const forward pass through `ws` against the
/// shared network (no model replica, no mutation of `net`).
[[nodiscard]] Fingerprint ExtractFingerprintAt(const nn::Network& net,
                                               const nn::Image& image,
                                               int layer,
                                               nn::LayerWorkspace& ws);

/// Batched extraction over `count` images addressed by `image_at`.
/// All workers run against the single shared const `net`; each worker
/// block brings one nn::LayerWorkspace (activation buffers only — no
/// per-worker model replica, no serialization round-trip).  Every
/// image's arithmetic is identical to the serial ExtractFingerprintAt,
/// so results are element-wise identical at any thread count.  Used by
/// the fingerprinting enclave's parallel stage and the substrate bench.
[[nodiscard]] std::vector<Fingerprint> ExtractFingerprintsBatch(
    const nn::Network& net, int layer, std::size_t count,
    const std::function<const nn::Image&(std::size_t)>& image_at);

/// L2 distance between two fingerprints (the paper's query metric).
[[nodiscard]] double FingerprintDistance(const Fingerprint& a,
                                         const Fingerprint& b);

}  // namespace caltrain::linkage
