// Fingerprint extraction (paper Sec. IV-C).
//
// The fingerprint F of a training instance is its L2-normalized feature
// embedding at the penultimate layer (the layer before softmax) of the
// trained model.  Fingerprints support distance queries but are one-way:
// without the (encrypted, enclave-held) FrontNet an adversary cannot
// run input-reconstruction techniques against them.
#pragma once

#include <vector>

#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace caltrain::linkage {

using Fingerprint = std::vector<float>;

/// Extracts the normalized penultimate-layer embedding of `image`.
[[nodiscard]] Fingerprint ExtractFingerprint(nn::Network& net,
                                             const nn::Image& image);

/// Extracts a normalized embedding from an arbitrary layer.  The paper
/// fingerprints the penultimate layer; for networks with few classes a
/// wider feature layer carries more within-class structure (see the
/// fingerprint-layer ablation bench).
[[nodiscard]] Fingerprint ExtractFingerprintAt(nn::Network& net,
                                               const nn::Image& image,
                                               int layer);

/// L2 distance between two fingerprints (the paper's query metric).
[[nodiscard]] double FingerprintDistance(const Fingerprint& a,
                                         const Fingerprint& b);

}  // namespace caltrain::linkage
