// Accountability evaluation metrics for Experiment IV.
//
// Ground truth (which training records were poisoned / mislabeled and
// which participant contributed them) is known to the experiment
// harness only; CalTrain itself sees just fingerprints.  The metrics
// quantify how precisely the nearest-neighbour queries surface the bad
// data and the responsible participant.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "linkage/linkage_db.hpp"

namespace caltrain::linkage {

enum class ProvenanceTag {
  kNormal = 0,
  kPoisoned = 1,    ///< trigger-stamped, relabeled by the attacker
  kMislabeled = 2,  ///< wrong label, no trigger
};

using ProvenanceMap = std::unordered_map<std::uint64_t, ProvenanceTag>;

struct AccountabilityEval {
  /// Fraction of all retrieved neighbours that are bad (poisoned or
  /// mislabeled) — query precision.
  double precision_bad = 0.0;
  /// Fraction of probes whose top-k contains at least one poisoned
  /// record — per-misprediction discovery rate.
  double recall_poisoned = 0.0;
  /// Fraction of probes for which the malicious participant is the
  /// majority source among the top-k — contributor attribution.
  double source_attribution = 0.0;
  std::size_t probes = 0;
  std::size_t retrieved = 0;
};

/// Evaluates per-probe top-k query results against ground truth.
[[nodiscard]] AccountabilityEval EvaluateAccountability(
    const std::vector<std::vector<QueryMatch>>& per_probe_matches,
    const ProvenanceMap& provenance, const std::string& malicious_source);

}  // namespace caltrain::linkage
