#include "linkage/lle.hpp"

#include <algorithm>
#include <cmath>

#include "linkage/vptree.hpp"
#include "util/error.hpp"

namespace caltrain::linkage {

std::vector<double> SolveLinearSystem(std::vector<double> a,
                                      std::vector<double> b, std::size_t n) {
  CALTRAIN_REQUIRE(a.size() == n * n && b.size() == n, "bad system size");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    CALTRAIN_REQUIRE(std::abs(a[pivot * n + col]) > 1e-30,
                     "singular system in LLE weight solve");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[pivot * n + j]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a[row * n + j] -= factor * a[col * n + j];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t j = row + 1; j < n; ++j) acc -= a[row * n + j] * x[j];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

EigenResult JacobiEigenSymmetric(std::vector<double> m, std::size_t n,
                                 int max_sweeps) {
  CALTRAIN_REQUIRE(m.size() == n * n, "bad matrix size");
  // Eigenvector accumulator starts as identity.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m[i * n + j] * m[i * n + j];
    }
    if (off < 1e-18) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::abs(apq) < 1e-15) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.values[i] = m[i * n + i];
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return m[a * n + a] < m[b * n + b];
  });
  EigenResult sorted;
  sorted.values.resize(n);
  sorted.vectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t col = order[rank];
    sorted.values[rank] = m[col * n + col];
    for (std::size_t row = 0; row < n; ++row) {
      sorted.vectors[rank][row] = v[row * n + col];
    }
  }
  return sorted;
}

std::vector<std::vector<double>> LocallyLinearEmbedding(
    const std::vector<std::vector<float>>& points, const LleOptions& options) {
  const std::size_t n = points.size();
  const std::size_t k = options.neighbors;
  CALTRAIN_REQUIRE(n > k + options.out_dims,
                   "LLE needs more points than neighbors + output dims");

  // Step 1+2: reconstruction weights.
  std::vector<double> w(n * n, 0.0);  // W[i][j]
  for (std::size_t i = 0; i < n; ++i) {
    // k+1 nearest, then drop self.
    std::vector<Neighbor> nbrs = BruteForceKnn(points, points[i], k + 1);
    std::vector<std::size_t> idx;
    for (const Neighbor& nb : nbrs) {
      if (nb.index != i && idx.size() < k) idx.push_back(nb.index);
    }
    CALTRAIN_CHECK(idx.size() == k, "not enough LLE neighbors");

    // Local Gram matrix C[a][b] = (x_i - x_a) . (x_i - x_b).
    const std::size_t dim = points[i].size();
    std::vector<double> gram(k * k, 0.0);
    double trace = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a; b < k; ++b) {
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          const double da = points[i][d] - points[idx[a]][d];
          const double db = points[i][d] - points[idx[b]][d];
          dot += da * db;
        }
        gram[a * k + b] = dot;
        gram[b * k + a] = dot;
        if (a == b) trace += dot;
      }
    }
    const double reg = options.regularization * (trace > 0.0 ? trace : 1.0);
    for (std::size_t a = 0; a < k; ++a) gram[a * k + a] += reg;

    std::vector<double> weights =
        SolveLinearSystem(std::move(gram), std::vector<double>(k, 1.0), k);
    double sum = 0.0;
    for (double x : weights) sum += x;
    CALTRAIN_CHECK(std::abs(sum) > 1e-30, "degenerate LLE weights");
    for (std::size_t a = 0; a < k; ++a) {
      w[i * n + idx[a]] = weights[a] / sum;
    }
  }

  // Step 3: M = (I - W)^T (I - W); bottom non-constant eigenvectors.
  std::vector<double> iw(n * n, 0.0);  // I - W
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      iw[i * n + j] = (i == j ? 1.0 : 0.0) - w[i * n + j];
    }
  }
  std::vector<double> m(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) acc += iw[r * n + i] * iw[r * n + j];
      m[i * n + j] = acc;
      m[j * n + i] = acc;
    }
  }

  const EigenResult eigen = JacobiEigenSymmetric(std::move(m), n);

  // Skip eigenvector 0 (the constant vector with eigenvalue ~0).
  std::vector<std::vector<double>> coords(n,
                                          std::vector<double>(options.out_dims));
  for (std::size_t d = 0; d < options.out_dims; ++d) {
    const std::vector<double>& vec = eigen.vectors[d + 1];
    for (std::size_t i = 0; i < n; ++i) coords[i][d] = vec[i];
  }
  return coords;
}

}  // namespace caltrain::linkage
