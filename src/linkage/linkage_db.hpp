// Linkage-structure database (paper Sec. IV-C).
//
// For every training instance the fingerprinting enclave records the
// 4-tuple Omega = [F, Y, S, H]:
//   F — one-way fingerprint (normalized penultimate-layer embedding)
//   Y — class label, used to restrict the query search space
//   S — data source (participant id), identifying the contributor
//   H — SHA-256 digest of the instance, verifying turned-in data
//
// At query time a model user submits the fingerprint + predicted label
// of a misprediction; the database returns the closest training
// fingerprints in that class with their sources, and can later verify
// that data a participant turns in is byte-identical to what was
// trained on.
//
// Storage is sharded into per-class *segments*: each segment owns its
// class's tuples (in ascending-id order), its own VP-tree index
// snapshot, a generation counter, and a mutex.  Inserting into class Y
// touches only Y's segment, so inserts into different classes proceed
// concurrently and never invalidate another class's index.  Index
// maintenance is incremental: a query is answered from the segment's
// last-built tree plus a brute-force scan of the small unindexed tail;
// RebuildIndexes() (or a tail outgrowing tail_limit()) folds the tail
// into a fresh tree.
//
// Determinism contract: ids are assigned in insertion order
// (InsertBatch i-th record gets id base+i regardless of thread count),
// results are exact kNN ordered by (distance, id), and Serialize()
// iterates tuples by id — so batched/parallel and serial call
// sequences are element-wise and byte-for-byte identical.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.hpp"
#include "linkage/fingerprint.hpp"
#include "linkage/vptree.hpp"
#include "util/mutex.hpp"
#include "util/serial.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::linkage {

struct LinkageTuple {
  std::uint64_t id = 0;          ///< database-assigned
  Fingerprint fingerprint;       ///< F
  int label = 0;                 ///< Y
  std::string source;            ///< S
  crypto::Sha256Digest hash{};   ///< H
};

/// One insert request (a LinkageTuple before the database assigns it
/// an id).  Labels must be non-negative — the serialized form stores
/// them as uint32.
struct LinkageRecord {
  Fingerprint fingerprint;
  int label = 0;
  std::string source;
  crypto::Sha256Digest hash{};
};

struct QueryMatch {
  std::uint64_t id = 0;
  double distance = 0.0;
  int label = 0;
  std::string source;
};

class LinkageDatabase {
 public:
  LinkageDatabase() = default;
  LinkageDatabase(LinkageDatabase&& other) noexcept;
  LinkageDatabase& operator=(LinkageDatabase&& other) noexcept;

  /// Inserts a tuple; returns the assigned id.  Only the target
  /// class's segment is touched (its unindexed tail grows by one) —
  /// every other class's index stays valid.
  std::uint64_t Insert(Fingerprint fingerprint, int label, std::string source,
                       const crypto::Sha256Digest& hash);

  /// Batched insert: records[i] gets id base+i in input order (ids are
  /// reserved up front, so the result is identical to calling Insert
  /// serially), while the per-class segment appends fan out over the
  /// thread pool.  Concurrent InsertBatch calls from different threads
  /// are safe; each call's id range is contiguous.
  std::vector<std::uint64_t> InsertBatch(std::vector<LinkageRecord> records);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const LinkageTuple& tuple(std::uint64_t id) const;

  /// The k nearest training fingerprints *within class `label`*
  /// (Y = Y_test restriction), closest first with (distance, id)
  /// tie-breaking.  Answered from the class segment's VP-tree plus a
  /// brute-force scan of its unindexed tail; a tail larger than
  /// tail_limit() (or a missing tree) triggers a segment rebuild
  /// first.  An unknown class returns an empty result.
  [[nodiscard]] std::vector<QueryMatch> QueryNearest(
      const Fingerprint& query, int label, std::size_t k);

  /// Batched form of QueryNearest: result[i] answers
  /// (queries[i], labels[i], k).  Folds the queried classes' tails in
  /// up front (parallel across segments), then runs the queries in
  /// parallel over the immutable index snapshots; results are
  /// element-wise identical to calling QueryNearest serially, at every
  /// thread count.
  [[nodiscard]] std::vector<std::vector<QueryMatch>> QueryNearestBatch(
      const std::vector<Fingerprint>& queries, const std::vector<int>& labels,
      std::size_t k);

  /// Reference brute-force query (tests assert agreement).
  [[nodiscard]] std::vector<QueryMatch> QueryNearestBruteForce(
      const Fingerprint& query, int label, std::size_t k) const;

  /// Folds every segment's unindexed tail into a fresh VP-tree, one
  /// segment per pool task.  Deterministic: each segment's tree is
  /// built over its tuples in ascending-id order.  Segments that are
  /// already fully indexed are left untouched (their generation does
  /// not change).
  void RebuildIndexes();

  /// Number of times class `label`'s index has been (re)built (0 if
  /// the class is unknown or its index was never built).  Tests use
  /// this to enforce that inserts into one class never invalidate
  /// another class's index.
  [[nodiscard]] std::uint64_t IndexGeneration(int label) const;

  /// Tuples of class `label` not yet covered by its index (answered by
  /// the brute-force tail scan until the next rebuild).
  [[nodiscard]] std::size_t UnindexedTailSize(int label) const;

  /// Tail size beyond which a serial QueryNearest folds the tail into
  /// a fresh tree before answering (default 256).
  [[nodiscard]] std::size_t tail_limit() const noexcept {
    return tail_limit_;
  }
  void set_tail_limit(std::size_t limit) noexcept { tail_limit_ = limit; }

  /// Forensic step: a participant turns in (image, label) claimed to be
  /// training instance `id`; verifies the hash digest H matches.
  [[nodiscard]] bool VerifySubmission(std::uint64_t id,
                                      const nn::Image& image,
                                      int label) const;

  /// All tuple ids for one class, ascending (e.g. to visualize a class
  /// cluster).
  [[nodiscard]] std::vector<std::uint64_t> IdsForLabel(int label) const;

  /// Persistence.  The blob format is segment-agnostic (tuples in id
  /// order), so sharded and pre-sharding databases serialize
  /// byte-identically.  Not safe concurrently with inserts.
  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static LinkageDatabase Deserialize(BytesView blob);

 private:
  /// Immutable index snapshot of one segment: a VP-tree over the
  /// fingerprints of the first `ids.size()` tuples (ascending id, so
  /// the tree's (distance, index) tie-break order equals the
  /// database's (distance, id) order) plus the id/source columns
  /// needed to materialize QueryMatch rows without touching the
  /// segment.
  struct SegmentIndex {
    explicit SegmentIndex(std::vector<std::vector<float>> points)
        : tree(std::move(points)) {}
    VpTree tree;
    std::vector<std::uint64_t> ids;      ///< tree position -> tuple id
    std::vector<std::string> sources;    ///< tree position -> source
  };

  /// One class's shard.  `tuples` only ever grows, in ascending-id
  /// order (a deque keeps references stable across appends); `index`
  /// covers the first `indexed` tuples and is replaced wholesale on
  /// rebuild, so in-flight queries holding the old snapshot stay
  /// valid.
  struct Segment {
    util::Mutex mu;
    int label = 0;  ///< immutable after creation
    std::deque<LinkageTuple> tuples GUARDED_BY(mu);
    std::shared_ptr<const SegmentIndex> index GUARDED_BY(mu);
    /// Tuples covered by `index`.
    std::size_t indexed GUARDED_BY(mu) = 0;
    /// Number of index builds.
    std::uint64_t generation GUARDED_BY(mu) = 0;
    /// Slots handed out (>= tuples.size()).  Guarded by the *outer*
    /// LinkageDatabase::directory_mu_, not by `mu` — the capability
    /// language cannot name the owning database's mutex from here, so
    /// this one stays convention-documented (all reads/writes sit in
    /// directory_mu_ scopes, plus Serialize's quiescence check which
    /// holds both locks).
    std::size_t reserved = 0;
    util::CondVar appended;  ///< signals tuples.size() growth
  };

  /// id -> owning segment and position within it.
  struct Location {
    Segment* segment = nullptr;
    std::size_t pos = 0;
  };

  Segment* EnsureSegmentLocked(int label) REQUIRES(directory_mu_);
  [[nodiscard]] Segment* FindSegment(int label) const
      EXCLUDES(directory_mu_);
  static void RebuildSegmentLocked(Segment& seg) REQUIRES(seg.mu);
  [[nodiscard]] std::vector<QueryMatch> QuerySegment(Segment& seg,
                                                     const Fingerprint& query,
                                                     std::size_t k,
                                                     bool allow_rebuild) const
      EXCLUDES(seg.mu);

  /// Guards segments_ (the label -> segment map), locator_, and every
  /// segment's `reserved` counter.  Lock order: directory_mu_ before
  /// any Segment::mu, never the reverse.
  mutable util::Mutex directory_mu_;
  std::unordered_map<int, std::unique_ptr<Segment>> segments_
      GUARDED_BY(directory_mu_);
  std::vector<Location> locator_ GUARDED_BY(directory_mu_);  ///< id == pos
  std::size_t tail_limit_ = 256;
};

}  // namespace caltrain::linkage
