// Linkage-structure database (paper Sec. IV-C).
//
// For every training instance the fingerprinting enclave records the
// 4-tuple Omega = [F, Y, S, H]:
//   F — one-way fingerprint (normalized penultimate-layer embedding)
//   Y — class label, used to restrict the query search space
//   S — data source (participant id), identifying the contributor
//   H — SHA-256 digest of the instance, verifying turned-in data
//
// At query time a model user submits the fingerprint + predicted label
// of a misprediction; the database returns the closest training
// fingerprints in that class with their sources, and can later verify
// that data a participant turns in is byte-identical to what was
// trained on.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.hpp"
#include "linkage/fingerprint.hpp"
#include "linkage/vptree.hpp"
#include "util/serial.hpp"

namespace caltrain::linkage {

struct LinkageTuple {
  std::uint64_t id = 0;          ///< database-assigned
  Fingerprint fingerprint;       ///< F
  int label = 0;                 ///< Y
  std::string source;            ///< S
  crypto::Sha256Digest hash{};   ///< H
};

struct QueryMatch {
  std::uint64_t id = 0;
  double distance = 0.0;
  int label = 0;
  std::string source;
};

class LinkageDatabase {
 public:
  LinkageDatabase() = default;

  /// Inserts a tuple; returns the assigned id.  Invalidates indexes.
  std::uint64_t Insert(Fingerprint fingerprint, int label, std::string source,
                       const crypto::Sha256Digest& hash);

  [[nodiscard]] std::size_t size() const noexcept { return tuples_.size(); }
  [[nodiscard]] const LinkageTuple& tuple(std::uint64_t id) const;

  /// The k nearest training fingerprints *within class `label`*
  /// (Y = Y_test restriction), closest first.  Uses per-class VP-tree
  /// indexes, built lazily.
  [[nodiscard]] std::vector<QueryMatch> QueryNearest(
      const Fingerprint& query, int label, std::size_t k);

  /// Batched form of QueryNearest: result[i] answers
  /// (queries[i], labels[i], k).  Builds every needed per-class index
  /// up front, then runs the queries in parallel over the immutable
  /// indexes; results are element-wise identical to calling
  /// QueryNearest serially, at every thread count.
  [[nodiscard]] std::vector<std::vector<QueryMatch>> QueryNearestBatch(
      const std::vector<Fingerprint>& queries, const std::vector<int>& labels,
      std::size_t k);

  /// Reference brute-force query (tests assert agreement).
  [[nodiscard]] std::vector<QueryMatch> QueryNearestBruteForce(
      const Fingerprint& query, int label, std::size_t k) const;

  /// Forensic step: a participant turns in (image, label) claimed to be
  /// training instance `id`; verifies the hash digest H matches.
  [[nodiscard]] bool VerifySubmission(std::uint64_t id,
                                      const nn::Image& image,
                                      int label) const;

  /// All tuple ids for one class (e.g. to visualize a class cluster).
  [[nodiscard]] std::vector<std::uint64_t> IdsForLabel(int label) const;

  /// Persistence.
  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static LinkageDatabase Deserialize(BytesView blob);

 private:
  struct ClassIndex {
    std::vector<std::uint64_t> ids;   ///< position -> tuple id
    std::unique_ptr<VpTree> tree;
  };

  ClassIndex& EnsureIndex(int label);

  /// Read-only match construction over a built index (shared by the
  /// serial and batched query paths so they cannot diverge).
  [[nodiscard]] std::vector<QueryMatch> QueryIndex(const ClassIndex& index,
                                                   const Fingerprint& query,
                                                   std::size_t k) const;

  std::vector<LinkageTuple> tuples_;  ///< id == position
  std::unordered_map<int, ClassIndex> indexes_;
  bool indexes_dirty_ = false;
};

}  // namespace caltrain::linkage
