#include "linkage/fingerprint.hpp"

#include "util/mathx.hpp"
#include "util/threadpool.hpp"

namespace caltrain::linkage {

Fingerprint ExtractFingerprint(nn::Network& net, const nn::Image& image) {
  Fingerprint embedding = net.EmbeddingOf(image);
  L2NormalizeInPlace(embedding);
  return embedding;
}

Fingerprint ExtractFingerprintAt(nn::Network& net, const nn::Image& image,
                                 int layer) {
  Fingerprint embedding = net.EmbeddingAtLayer(image, layer);
  L2NormalizeInPlace(embedding);
  return embedding;
}

Fingerprint ExtractFingerprintAt(const nn::Network& net,
                                 const nn::Image& image, int layer,
                                 nn::LayerWorkspace& ws) {
  Fingerprint embedding =
      net.EmbeddingAtLayer(image, layer, nn::KernelProfile::kFast, ws);
  L2NormalizeInPlace(embedding);
  return embedding;
}

std::vector<Fingerprint> ExtractFingerprintsBatch(
    const nn::Network& net, int layer, std::size_t count,
    const std::function<const nn::Image&(std::size_t)>& image_at) {
  std::vector<Fingerprint> fingerprints(count);
  util::ParallelForBlocked(0, count, [&](std::size_t b0, std::size_t b1) {
    // One activation workspace per worker block; the model itself is
    // shared const across all workers.
    nn::LayerWorkspace ws(net);
    for (std::size_t i = b0; i < b1; ++i) {
      fingerprints[i] = ExtractFingerprintAt(net, image_at(i), layer, ws);
    }
  });
  return fingerprints;
}

double FingerprintDistance(const Fingerprint& a, const Fingerprint& b) {
  return L2Distance(a, b);
}

}  // namespace caltrain::linkage
