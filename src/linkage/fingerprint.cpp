#include "linkage/fingerprint.hpp"

#include "util/mathx.hpp"

namespace caltrain::linkage {

Fingerprint ExtractFingerprint(nn::Network& net, const nn::Image& image) {
  Fingerprint embedding = net.EmbeddingOf(image);
  L2NormalizeInPlace(embedding);
  return embedding;
}

Fingerprint ExtractFingerprintAt(nn::Network& net, const nn::Image& image,
                                 int layer) {
  Fingerprint embedding = net.EmbeddingAtLayer(image, layer);
  L2NormalizeInPlace(embedding);
  return embedding;
}

double FingerprintDistance(const Fingerprint& a, const Fingerprint& b) {
  return L2Distance(a, b);
}

}  // namespace caltrain::linkage
