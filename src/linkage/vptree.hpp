// Vantage-point tree for exact k-nearest-neighbour search in L2.
//
// The linkage database's per-class fingerprint indexes use this to keep
// query cost sublinear; a brute-force scan remains available as the
// reference implementation (tests assert they agree).
#pragma once

#include <cstddef>
#include <limits>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace caltrain::linkage {

struct Neighbor {
  std::size_t index = 0;  ///< index into the point set given at build time
  double distance = 0.0;
};

class VpTree {
 public:
  /// Builds over `points` (all the same dimension).  Indices returned by
  /// Search refer to positions in this vector.
  explicit VpTree(std::vector<std::vector<float>> points);

  /// The k nearest neighbours of `query`, closest first; equal
  /// distances tie-break on ascending index, so the result is
  /// element-wise identical to BruteForceKnn even with duplicate
  /// points.
  [[nodiscard]] std::vector<Neighbor> Search(const std::vector<float>& query,
                                             std::size_t k) const;

  /// Batched queries: result[i] == Search(queries[i], k).  The queries
  /// run in parallel over the shared immutable tree when the
  /// parallelism config allows; results are element-wise identical to
  /// serial Search at every thread count.
  [[nodiscard]] std::vector<std::vector<Neighbor>> SearchBatch(
      const std::vector<std::vector<float>>& queries, std::size_t k) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Node {
    std::size_t point_index = 0;
    double radius = 0.0;
    int inside = -1;
    int outside = -1;
  };

  int Build(std::vector<std::size_t>& indices, std::size_t lo,
            std::size_t hi);
  void SearchNode(int node, const std::vector<float>& query, std::size_t k,
                  std::priority_queue<Neighbor, std::vector<Neighbor>,
                                      bool (*)(const Neighbor&,
                                               const Neighbor&)>& best,
                  double& tau) const;

  std::vector<std::vector<float>> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Reference brute-force k-NN over the same contract.
[[nodiscard]] std::vector<Neighbor> BruteForceKnn(
    const std::vector<std::vector<float>>& points,
    const std::vector<float>& query, std::size_t k);

}  // namespace caltrain::linkage
