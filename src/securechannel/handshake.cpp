#include "securechannel/handshake.hpp"

#include "crypto/hmac.hpp"
#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::securechannel {

namespace {

constexpr std::size_t kNonceSize = 16;

struct DerivedKeys {
  SessionKeys session;
  Bytes finished_secret;
};

DerivedKeys DeriveKeys(crypto::U128 shared, BytesView transcript) {
  const crypto::Sha256Digest transcript_hash = crypto::Sha256Hash(transcript);
  const Bytes ikm = crypto::U128ToBytes(shared);
  const crypto::Sha256Digest prk = crypto::HkdfExtract(
      BytesView(transcript_hash.data(), transcript_hash.size()), ikm);
  DerivedKeys out;
  out.session.client_write_key =
      crypto::HkdfExpand(prk, BytesOf("caltrain c2s"), 32);
  out.session.server_write_key =
      crypto::HkdfExpand(prk, BytesOf("caltrain s2c"), 32);
  out.finished_secret = crypto::HkdfExpand(prk, BytesOf("caltrain fin"), 32);
  return out;
}

Bytes FinishedMac(BytesView finished_secret, BytesView transcript,
                  const char* role) {
  Bytes body = BytesOf(role);
  const crypto::Sha256Digest th = crypto::Sha256Hash(transcript);
  Append(body, BytesView(th.data(), th.size()));
  const crypto::Sha256Digest mac = crypto::HmacSha256(finished_secret, body);
  return Bytes(mac.begin(), mac.end());
}

Bytes QuoteBinding(crypto::U128 server_pub, crypto::U128 client_pub,
                   BytesView client_nonce) {
  crypto::Sha256 hasher;
  const Bytes s = crypto::U128ToBytes(server_pub);
  const Bytes c = crypto::U128ToBytes(client_pub);
  hasher.Update(s);
  hasher.Update(c);
  hasher.Update(client_nonce);
  const crypto::Sha256Digest digest = hasher.Finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

ServerHandshake::ServerHandshake(enclave::Enclave& enclave,
                                 enclave::AttestationService& attestation)
    : enclave_(enclave), attestation_(attestation) {}

Bytes ServerHandshake::OnClientHello(BytesView client_hello) {
  return enclave_.Ecall([&]() -> Bytes {
    ByteReader reader(client_hello);
    const crypto::U128 client_pub = crypto::U128FromBytes(reader.ReadBytes());
    const Bytes client_nonce = reader.ReadBytes();
    CALTRAIN_REQUIRE(client_nonce.size() == kNonceSize && reader.AtEnd(),
                     "malformed ClientHello");

    dh_ = crypto::DhGenerate(enclave_.drbg());
    const crypto::U128 shared =
        crypto::DhSharedSecret(dh_.secret, client_pub);

    const Bytes binding =
        QuoteBinding(dh_.public_value, client_pub, client_nonce);
    const enclave::Quote quote =
        attestation_.GenerateQuote(enclave_, binding);

    Bytes server_nonce = enclave_.drbg().Generate(kNonceSize);

    ByteWriter core;
    core.WriteBytes(crypto::U128ToBytes(dh_.public_value));
    core.WriteBytes(server_nonce);
    core.WriteBytes(quote.Serialize());

    transcript_.assign(client_hello.begin(), client_hello.end());
    Append(transcript_, core.data());

    DerivedKeys derived = DeriveKeys(shared, transcript_);
    keys_ = std::move(derived.session);
    finished_secret_ = std::move(derived.finished_secret);
    keys_ready_ = true;

    const Bytes mac = FinishedMac(finished_secret_, transcript_, "server");
    ByteWriter hello;
    hello.WriteBytes(core.data());
    hello.WriteBytes(mac);
    return hello.Take();
  });
}

bool ServerHandshake::OnClientFinished(BytesView client_finished) {
  return enclave_.Ecall([&]() -> bool {
    CALTRAIN_REQUIRE(keys_ready_, "ClientFinished before ClientHello");
    const Bytes expected =
        FinishedMac(finished_secret_, transcript_, "client");
    complete_ = ConstantTimeEqual(expected, client_finished);
    return complete_;
  });
}

const SessionKeys& ServerHandshake::keys() const {
  CALTRAIN_REQUIRE(complete_, "handshake not complete");
  return keys_;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

ClientHandshake::ClientHandshake(
    crypto::U128 attestation_public_key,
    const crypto::Sha256Digest& expected_measurement, crypto::HmacDrbg& drbg)
    : attestation_public_key_(attestation_public_key),
      expected_measurement_(expected_measurement),
      drbg_(drbg) {}

Bytes ClientHandshake::Hello() {
  CALTRAIN_REQUIRE(!hello_sent_, "Hello already sent");
  dh_ = crypto::DhGenerate(drbg_);
  nonce_ = drbg_.Generate(kNonceSize);
  ByteWriter writer;
  writer.WriteBytes(crypto::U128ToBytes(dh_.public_value));
  writer.WriteBytes(nonce_);
  Bytes hello = writer.Take();
  transcript_ = hello;
  hello_sent_ = true;
  return hello;
}

Bytes ClientHandshake::OnServerHello(BytesView server_hello) {
  CALTRAIN_REQUIRE(hello_sent_, "ServerHello before Hello");
  ByteReader outer(server_hello);
  const Bytes core = outer.ReadBytes();
  const Bytes server_mac = outer.ReadBytes();
  CALTRAIN_REQUIRE(outer.AtEnd(), "malformed ServerHello");

  ByteReader reader(core);
  const crypto::U128 server_pub = crypto::U128FromBytes(reader.ReadBytes());
  const Bytes server_nonce = reader.ReadBytes();
  const enclave::Quote quote = enclave::Quote::Deserialize(reader.ReadBytes());
  CALTRAIN_REQUIRE(server_nonce.size() == kNonceSize && reader.AtEnd(),
                   "malformed ServerHello core");

  // 1. Quote signature chains to the attestation service.
  if (!enclave::AttestationService::VerifyQuote(attestation_public_key_,
                                                quote)) {
    ThrowError(ErrorKind::kAuthFailure, "attestation quote signature invalid");
  }
  // 2. Measurement matches the reviewed enclave code.
  if (!ConstantTimeEqual(
          BytesView(quote.measurement.data(), quote.measurement.size()),
          BytesView(expected_measurement_.data(),
                    expected_measurement_.size()))) {
    ThrowError(ErrorKind::kAuthFailure,
               "enclave measurement does not match reviewed code");
  }
  // 3. Quote is bound to this session's DH keys (anti-MITM).
  const Bytes binding = QuoteBinding(server_pub, dh_.public_value, nonce_);
  if (!ConstantTimeEqual(binding, quote.report_data)) {
    ThrowError(ErrorKind::kAuthFailure, "quote not bound to this session");
  }

  const crypto::U128 shared = crypto::DhSharedSecret(dh_.secret, server_pub);
  Append(transcript_, core);

  DerivedKeys derived = DeriveKeys(shared, transcript_);
  keys_ = std::move(derived.session);

  // 4. Server proved possession of the shared secret.
  const Bytes expected_mac =
      FinishedMac(derived.finished_secret, transcript_, "server");
  if (!ConstantTimeEqual(expected_mac, server_mac)) {
    ThrowError(ErrorKind::kAuthFailure, "server finished MAC invalid");
  }

  complete_ = true;
  return FinishedMac(derived.finished_secret, transcript_, "client");
}

const SessionKeys& ClientHandshake::keys() const {
  CALTRAIN_REQUIRE(complete_, "handshake not complete");
  return keys_;
}

}  // namespace caltrain::securechannel
