#include "securechannel/record.hpp"

#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::securechannel {

namespace {
std::array<std::uint8_t, crypto::kGcmIvSize> SeqIv(std::uint64_t seq) {
  std::array<std::uint8_t, crypto::kGcmIvSize> iv{};
  StoreLe64(iv.data(), seq);
  return iv;
}
}  // namespace

RecordWriter::RecordWriter(BytesView key) : cipher_(key) {}

Bytes RecordWriter::Protect(BytesView plaintext, BytesView aad) {
  const auto iv = SeqIv(seq_);
  // The sequence number is authenticated alongside the caller AAD.
  Bytes full_aad(8);
  StoreLe64(full_aad.data(), seq_);
  Append(full_aad, aad);
  const crypto::GcmSealed sealed = cipher_.Seal(iv, full_aad, plaintext);
  ++seq_;
  ByteWriter writer;
  writer.WriteU64(seq_ - 1);
  writer.WriteBytes(sealed.ciphertext);
  writer.WriteBytes(BytesView(sealed.tag.data(), sealed.tag.size()));
  return writer.Take();
}

RecordReader::RecordReader(BytesView key) : cipher_(key) {}

std::optional<Bytes> RecordReader::Unprotect(BytesView record, BytesView aad) {
  try {
    ByteReader reader(record);
    const std::uint64_t seq = reader.ReadU64();
    const Bytes ciphertext = reader.ReadBytes();
    const Bytes tag = reader.ReadBytes();
    if (!reader.AtEnd() || tag.size() != crypto::kGcmTagSize) {
      return std::nullopt;
    }
    if (seq != seq_) return std::nullopt;  // replay or reorder

    Bytes full_aad(8);
    StoreLe64(full_aad.data(), seq);
    Append(full_aad, aad);
    std::array<std::uint8_t, crypto::kGcmTagSize> tag_arr{};
    std::copy(tag.begin(), tag.end(), tag_arr.begin());
    auto plaintext =
        cipher_.Open(SeqIv(seq), full_aad, ciphertext, tag_arr);
    if (plaintext.has_value()) ++seq_;
    return plaintext;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace caltrain::securechannel
