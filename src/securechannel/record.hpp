// Record layer: AES-256-GCM framing over the handshake-derived keys,
// with monotonically increasing sequence numbers as nonces and strict
// in-order delivery (a replayed or reordered record is rejected).
#pragma once

#include <optional>

#include "crypto/gcm.hpp"
#include "util/bytes.hpp"

namespace caltrain::securechannel {

/// One direction of an established channel.  Create a writer on the
/// sending side and a reader on the receiving side from the same key.
class RecordWriter {
 public:
  explicit RecordWriter(BytesView key);

  /// Encrypts and frames one record; `aad` is authenticated but not
  /// encrypted (CalTrain uses it for participant identifiers).
  [[nodiscard]] Bytes Protect(BytesView plaintext, BytesView aad = {});

  [[nodiscard]] std::uint64_t records_sent() const noexcept { return seq_; }

 private:
  crypto::AesGcm cipher_;
  std::uint64_t seq_ = 0;
};

class RecordReader {
 public:
  explicit RecordReader(BytesView key);

  /// Verifies and decrypts the next record.  Returns nullopt on
  /// authentication failure, wrong sequence (replay/reorder), or
  /// malformed framing.
  [[nodiscard]] std::optional<Bytes> Unprotect(BytesView record,
                                               BytesView aad = {});

  [[nodiscard]] std::uint64_t records_received() const noexcept {
    return seq_;
  }

 private:
  crypto::AesGcm cipher_;
  std::uint64_t seq_ = 0;
};

}  // namespace caltrain::securechannel
