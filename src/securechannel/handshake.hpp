// Attested secure-channel handshake.
//
// Stands in for the mbedtls-SGX TLS channel of the paper's prototype:
// participants open a channel *directly into the training enclave* and
// provision their symmetric data keys only after validating the
// enclave's attestation quote (paper Sec. IV-A).
//
// Flow (messages are opaque byte blobs the caller transports):
//   client                                   enclave (server)
//   ---------- ClientHello: dh_pub_c, nonce_c ---------->
//   <--- ServerHello: dh_pub_s, nonce_s, quote, mac_s ---
//   ------------- ClientFinished: mac_c --------------->
//
// The quote's report data binds the enclave's ephemeral DH key and the
// client nonce to the attested measurement, so a man-in-the-middle
// cannot splice its own key into an attested session.  Traffic keys are
// HKDF-derived from the DH shared secret and the transcript hash.
#pragma once

#include <optional>

#include "crypto/drbg.hpp"
#include "crypto/group.hpp"
#include "crypto/sha256.hpp"
#include "enclave/attestation.hpp"
#include "util/bytes.hpp"

namespace caltrain::securechannel {

struct SessionKeys {
  Bytes client_write_key;  ///< 32 bytes, client->server records
  Bytes server_write_key;  ///< 32 bytes, server->client records
};

/// Server side, owned by (and logically running inside) the enclave.
class ServerHandshake {
 public:
  ServerHandshake(enclave::Enclave& enclave,
                  enclave::AttestationService& attestation);

  /// Processes ClientHello; returns ServerHello.  Throws
  /// Error(kAuthFailure / kInvalidArgument) on malformed input.
  [[nodiscard]] Bytes OnClientHello(BytesView client_hello);

  /// Processes ClientFinished; returns true when the client proved
  /// possession of the shared secret.
  [[nodiscard]] bool OnClientFinished(BytesView client_finished);

  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] const SessionKeys& keys() const;

 private:
  enclave::Enclave& enclave_;
  enclave::AttestationService& attestation_;
  crypto::DhKeyPair dh_;
  Bytes transcript_;
  SessionKeys keys_;
  Bytes finished_secret_;
  bool keys_ready_ = false;
  bool complete_ = false;
};

/// Client (training participant) side.
class ClientHandshake {
 public:
  /// `expected_measurement` is the enclave code identity the participant
  /// reviewed and agreed to (consensus assumption, paper Sec. III).
  ClientHandshake(crypto::U128 attestation_public_key,
                  const crypto::Sha256Digest& expected_measurement,
                  crypto::HmacDrbg& drbg);

  [[nodiscard]] Bytes Hello();

  /// Verifies the quote + measurement + binding, derives keys, and
  /// returns ClientFinished.  Throws Error(kAuthFailure) if attestation
  /// fails — the participant must NOT provision secrets in that case.
  [[nodiscard]] Bytes OnServerHello(BytesView server_hello);

  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] const SessionKeys& keys() const;

 private:
  crypto::U128 attestation_public_key_;
  crypto::Sha256Digest expected_measurement_;
  crypto::HmacDrbg& drbg_;
  crypto::DhKeyPair dh_;
  Bytes nonce_;
  Bytes transcript_;
  SessionKeys keys_;
  bool hello_sent_ = false;
  bool complete_ = false;
};

}  // namespace caltrain::securechannel
