#include "crypto/hmac.hpp"

#include <array>

#include "util/error.hpp"

namespace caltrain::crypto {

Sha256Digest HmacSha256(BytesView key, BytesView data) noexcept {
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256Hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(BytesView(ipad.data(), ipad.size()));
  inner.Update(data);
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(BytesView(opad.data(), opad.size()));
  outer.Update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HkdfExtract(BytesView salt, BytesView ikm) noexcept {
  return HmacSha256(salt, ikm);
}

Bytes HkdfExpand(const Sha256Digest& prk, BytesView info, std::size_t length) {
  CALTRAIN_REQUIRE(length <= 255 * kSha256DigestSize,
                   "HKDF-Expand length too large");
  Bytes out;
  out.reserve(length);
  Bytes previous;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block_input = previous;
    Append(block_input, info);
    block_input.push_back(counter++);
    const Sha256Digest block = HmacSha256(
        BytesView(prk.data(), prk.size()),
        BytesView(block_input.data(), block_input.size()));
    previous.assign(block.begin(), block.end());
    const std::size_t take = std::min(previous.size(), length - out.size());
    out.insert(out.end(), previous.begin(),
               previous.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes Hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return HkdfExpand(HkdfExtract(salt, ikm), info, length);
}

}  // namespace caltrain::crypto
