// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the cipher the paper's participants use to seal training data
// before upload (Sec. IV-A): confidentiality from AES-CTR plus an
// authentication tag that lets the training enclave verify the data
// source.  Tag verification failure is how CalTrain discards injected
// data from unregistered channels.
#pragma once

#include <optional>

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace caltrain::crypto {

inline constexpr std::size_t kGcmIvSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;

struct GcmSealed {
  Bytes ciphertext;
  std::array<std::uint8_t, kGcmTagSize> tag{};
};

/// AES-GCM with a fixed key.  Key must be 16 or 32 bytes; IVs must be
/// 12 bytes (the recommended GCM nonce size) and unique per key.
class AesGcm {
 public:
  explicit AesGcm(BytesView key);

  /// Encrypts `plaintext` and authenticates it together with the
  /// additional authenticated data `aad`.
  [[nodiscard]] GcmSealed Seal(BytesView iv, BytesView aad,
                               BytesView plaintext) const;

  /// Verifies the tag (constant time) and decrypts.  Returns nullopt on
  /// authentication failure; the caller must treat that as adversarial.
  [[nodiscard]] std::optional<Bytes> Open(
      BytesView iv, BytesView aad, BytesView ciphertext,
      std::span<const std::uint8_t, kGcmTagSize> tag) const;

 private:
  struct U128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
  };

  /// Bitwise reference multiply by H (used to build the tables).
  [[nodiscard]] U128 GhashMultiplySlow(U128 x) const noexcept;
  /// Table-driven multiply: X*H = XOR over 4-bit chunks of X of
  /// precomputed (chunk << position) * H — GF(2^128) multiplication is
  /// linear, so the 32x16 table is exact.
  [[nodiscard]] U128 GhashMultiply(U128 x) const noexcept;
  [[nodiscard]] std::array<std::uint8_t, kGcmTagSize> ComputeTag(
      BytesView iv, BytesView aad, BytesView ciphertext) const noexcept;

  Aes aes_;
  U128 h_{};  // GHASH subkey H = E_K(0^128)
  // nibble_table_[pos][nibble] = (nibble placed at 4-bit chunk `pos`,
  // counted from the most significant chunk) * H.
  std::array<std::array<U128, 16>, 32> nibble_table_{};
  // H^1..H^4 as big-endian 16-byte blocks, derived from the bitwise
  // reference multiply — consumed by the PCLMUL kernel's 4-block
  // aggregated reduction (see ghash_kernels.inc / crypto/isa.hpp).
  std::array<std::uint8_t, 64> h_powers_{};
};

}  // namespace caltrain::crypto
