#include "crypto/gcm.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <cstring>

#include "crypto/isa.hpp"
#include "util/error.hpp"

namespace caltrain::crypto {

namespace {

AesBlock MakeJ0(BytesView iv) {
  CALTRAIN_REQUIRE(iv.size() == kGcmIvSize, "GCM IV must be 12 bytes");
  AesBlock j0{};
  std::memcpy(j0.data(), iv.data(), kGcmIvSize);
  j0[15] = 1;
  return j0;
}

AesBlock IncrementCounter(const AesBlock& block) noexcept {
  AesBlock out = block;
  StoreBe32(out.data() + 12, LoadBe32(out.data() + 12) + 1);
  return out;
}

}  // namespace

AesGcm::AesGcm(BytesView key) : aes_(key) {
  AesBlock zero{};
  AesBlock h_block{};
  aes_.EncryptBlock(zero.data(), h_block.data());
  h_.hi = LoadBe64(h_block.data());
  h_.lo = LoadBe64(h_block.data() + 8);

  // Precompute (nibble << chunk) * H for every 4-bit chunk position.
  for (int pos = 0; pos < 32; ++pos) {
    for (std::uint64_t nibble = 0; nibble < 16; ++nibble) {
      U128 x{};
      // Chunk 0 is the most significant nibble of the 128-bit value.
      const int shift_from_top = pos * 4;
      if (shift_from_top < 64) {
        x.hi = nibble << (60 - shift_from_top);
      } else {
        x.lo = nibble << (124 - shift_from_top);
      }
      nibble_table_[static_cast<std::size_t>(pos)][nibble] =
          GhashMultiplySlow(x);
    }
  }

  // H^1..H^4 for the PCLMUL aggregated-reduction kernel, each stored
  // as the big-endian block bytes the kernel loads.
  U128 hp = h_;
  for (int power = 0; power < 4; ++power) {
    StoreBe64(h_powers_.data() + 16 * static_cast<std::size_t>(power), hp.hi);
    StoreBe64(h_powers_.data() + 16 * static_cast<std::size_t>(power) + 8,
              hp.lo);
    hp = GhashMultiplySlow(hp);  // *H: next power
  }
}

// PCLMUL GHASH kernel (x86 only; no-op include elsewhere).
#include "crypto/ghash_kernels.inc"

AesGcm::U128 AesGcm::GhashMultiply(U128 x) const noexcept {
  U128 z{};
  for (int byte_pos = 0; byte_pos < 8; ++byte_pos) {
    const std::uint64_t byte = (x.hi >> (56 - 8 * byte_pos)) & 0xff;
    const auto& hi_entry =
        nibble_table_[static_cast<std::size_t>(2 * byte_pos)][byte >> 4];
    const auto& lo_entry =
        nibble_table_[static_cast<std::size_t>(2 * byte_pos + 1)][byte & 0xf];
    z.hi ^= hi_entry.hi ^ lo_entry.hi;
    z.lo ^= hi_entry.lo ^ lo_entry.lo;
  }
  for (int byte_pos = 0; byte_pos < 8; ++byte_pos) {
    const std::uint64_t byte = (x.lo >> (56 - 8 * byte_pos)) & 0xff;
    const auto& hi_entry =
        nibble_table_[static_cast<std::size_t>(16 + 2 * byte_pos)][byte >> 4];
    const auto& lo_entry =
        nibble_table_[static_cast<std::size_t>(17 + 2 * byte_pos)][byte & 0xf];
    z.hi ^= hi_entry.hi ^ lo_entry.hi;
    z.lo ^= hi_entry.lo ^ lo_entry.lo;
  }
  return z;
}

AesGcm::U128 AesGcm::GhashMultiplySlow(U128 x) const noexcept {
  // Bitwise GF(2^128) multiply, GCM bit order (bit 0 is the MSB).
  U128 z{};
  U128 v = h_;
  for (int i = 0; i < 128; ++i) {
    const bool bit = (i < 64) ? ((x.hi >> (63 - i)) & 1)
                              : ((x.lo >> (127 - i)) & 1);
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;
  }
  return z;
}

std::array<std::uint8_t, kGcmTagSize> AesGcm::ComputeTag(
    BytesView iv, BytesView aad, BytesView ciphertext) const noexcept {
  U128 y{};
  const auto absorb = [&](BytesView data) noexcept {
    std::size_t offset = 0;
#if defined(__x86_64__) || defined(__i386__)
    // Bulk full blocks go through the PCLMUL kernel; the zero-padded
    // tail block (if any) falls through to the scalar loop below.
    const std::size_t full_blocks = data.size() / kAesBlockSize;
    if (ActiveDispatch().ghash == GhashImpl::kPclmul && full_blocks > 0) {
      AesBlock y_bytes{};
      StoreBe64(y_bytes.data(), y.hi);
      StoreBe64(y_bytes.data() + 8, y.lo);
      kernels::GhashBlocksPclmul(h_powers_.data(), y_bytes.data(),
                                 data.data(), full_blocks);
      y.hi = LoadBe64(y_bytes.data());
      y.lo = LoadBe64(y_bytes.data() + 8);
      offset = full_blocks * kAesBlockSize;
    }
#endif
    while (offset < data.size()) {
      AesBlock block{};
      const std::size_t take = std::min(data.size() - offset, kAesBlockSize);
      std::memcpy(block.data(), data.data() + offset, take);
      y.hi ^= LoadBe64(block.data());
      y.lo ^= LoadBe64(block.data() + 8);
      y = GhashMultiply(y);
      offset += take;
    }
  };
  absorb(aad);
  absorb(ciphertext);

  // Length block: bit lengths of AAD and ciphertext.
  y.hi ^= static_cast<std::uint64_t>(aad.size()) * 8;
  y.lo ^= static_cast<std::uint64_t>(ciphertext.size()) * 8;
  y = GhashMultiply(y);

  AesBlock ghash{};
  StoreBe64(ghash.data(), y.hi);
  StoreBe64(ghash.data() + 8, y.lo);

  AesBlock ek_j0{};
  const AesBlock j0 = MakeJ0(iv);
  aes_.EncryptBlock(j0.data(), ek_j0.data());

  std::array<std::uint8_t, kGcmTagSize> tag{};
  for (std::size_t i = 0; i < kGcmTagSize; ++i) tag[i] = ghash[i] ^ ek_j0[i];
  return tag;
}

GcmSealed AesGcm::Seal(BytesView iv, BytesView aad, BytesView plaintext) const {
  const AesBlock counter = IncrementCounter(MakeJ0(iv));
  GcmSealed sealed;
  sealed.ciphertext.resize(plaintext.size());
  AesCtrXor(aes_, counter, plaintext, sealed.ciphertext.data());
  sealed.tag = ComputeTag(iv, aad, sealed.ciphertext);
  return sealed;
}

std::optional<Bytes> AesGcm::Open(
    BytesView iv, BytesView aad, BytesView ciphertext,
    std::span<const std::uint8_t, kGcmTagSize> tag) const {
  const auto expected = ComputeTag(iv, aad, ciphertext);
  if (!ConstantTimeEqual(BytesView(expected.data(), expected.size()),
                         BytesView(tag.data(), tag.size()))) {
    return std::nullopt;
  }
  const AesBlock counter = IncrementCounter(MakeJ0(iv));
  Bytes plaintext(ciphertext.size());
  AesCtrXor(aes_, counter, ciphertext, plaintext.data());
  return plaintext;
}

}  // namespace caltrain::crypto
