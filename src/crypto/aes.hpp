// AES-128/256 block cipher (FIPS 197) with a CTR-mode stream.
//
// AES-GCM built on top of this authenticates and encrypts participant
// training data (Sec. IV-A); raw AES-CTR models the SGX Memory
// Encryption Engine when the enclave simulator evicts EPC pages.
//
// Encrypt-only T-table implementation: CTR and GCM never need the
// inverse cipher.  Not hardened against cache-timing side channels —
// the paper explicitly scopes side channels out (Sec. III).
//
// Bulk AES-CTR dispatches at runtime to AES-NI (4 counter lanes) or
// VAES (8 lanes in 256-bit registers) when the CPU supports them — see
// crypto/isa.hpp for tier selection and the CALTRAIN_CRYPTO_ISA
// override.  The hardware paths consume the same scalar key schedule
// (pre-serialised to byte form) and are byte-identical to the scalar
// loop for every input.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace caltrain::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// AES key schedule + single-block encryption.  Key must be 16 or 32
/// bytes (AES-128 / AES-256).
class Aes {
 public:
  explicit Aes(BytesView key);

  /// Encrypts one 16-byte block.
  void EncryptBlock(const std::uint8_t* in, std::uint8_t* out) const noexcept;

  [[nodiscard]] int rounds() const noexcept { return rounds_; }

  /// The expanded key in byte form: (rounds()+1) consecutive 16-byte
  /// round keys, exactly the bytes AddRoundKey XORs into the state.
  /// This is what the AES-NI/VAES kernels consume, so hardware and
  /// scalar paths share one key schedule by construction.
  [[nodiscard]] const std::uint8_t* round_key_bytes() const noexcept {
    return round_key_bytes_.data();
  }

 private:
  std::array<std::uint32_t, 60> round_keys_{};
  std::array<std::uint8_t, 240> round_key_bytes_{};
  int rounds_ = 0;
};

/// AES-CTR keystream XOR: encrypt == decrypt.  `counter_block` is the
/// initial 16-byte counter; the final 32 bits are incremented big-endian
/// per block (the GCM convention).
void AesCtrXor(const Aes& aes, const AesBlock& counter_block, BytesView in,
               std::uint8_t* out) noexcept;

}  // namespace caltrain::crypto
