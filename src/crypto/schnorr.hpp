// Schnorr signatures over the M127 group.
//
// Stands in for the Intel attestation signature chain: the simulated
// "processor" holds a Schnorr keypair and signs enclave quotes
// (measurement + report data); participants verify against the
// attestation service's published public key.  Same protocol shape as
// EPID/ECDSA quotes, simulation-grade group size (see group.hpp).
#pragma once

#include "crypto/drbg.hpp"
#include "crypto/group.hpp"
#include "util/bytes.hpp"

namespace caltrain::crypto {

struct SchnorrKeyPair {
  U128 secret = 0;          ///< x
  U128 public_value = 0;    ///< y = g^x mod p
};

struct SchnorrSignature {
  U128 commitment = 0;  ///< R = g^k mod p
  U128 response = 0;    ///< s = k + e*x mod (p-1)
};

[[nodiscard]] SchnorrKeyPair SchnorrGenerate(HmacDrbg& drbg);

/// Signs `message` with a fresh nonce from `drbg`.
[[nodiscard]] SchnorrSignature SchnorrSign(const SchnorrKeyPair& key,
                                           BytesView message, HmacDrbg& drbg);

/// Verifies g^s == R * y^e, with e = H(R || y || message).
[[nodiscard]] bool SchnorrVerify(U128 public_value, BytesView message,
                                 const SchnorrSignature& signature) noexcept;

/// Serialization for embedding signatures in quotes.
[[nodiscard]] Bytes SerializeSignature(const SchnorrSignature& signature);
[[nodiscard]] SchnorrSignature DeserializeSignature(BytesView data);

}  // namespace caltrain::crypto
