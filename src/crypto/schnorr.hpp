// Schnorr signatures over the M127 group.
//
// Stands in for the Intel attestation signature chain: the simulated
// "processor" holds a Schnorr keypair and signs enclave quotes
// (measurement + report data); participants verify against the
// attestation service's published public key.  Same protocol shape as
// EPID/ECDSA quotes, simulation-grade group size (see group.hpp).
#pragma once

#include "crypto/drbg.hpp"
#include "crypto/group.hpp"
#include "util/bytes.hpp"

namespace caltrain::crypto {

struct SchnorrKeyPair {
  U128 secret = 0;          ///< x
  U128 public_value = 0;    ///< y = g^x mod p
};

struct SchnorrSignature {
  U128 commitment = 0;  ///< R = g^k mod p
  U128 response = 0;    ///< s = k + e*x mod (p-1)
};

[[nodiscard]] SchnorrKeyPair SchnorrGenerate(HmacDrbg& drbg);

/// Signs `message` with a fresh nonce from `drbg`.
[[nodiscard]] SchnorrSignature SchnorrSign(const SchnorrKeyPair& key,
                                           BytesView message, HmacDrbg& drbg);

/// Verifies g^s == R * y^e, with e = H(R || y || message).
[[nodiscard]] bool SchnorrVerify(U128 public_value, BytesView message,
                                 const SchnorrSignature& signature) noexcept;

/// Serialization for embedding signatures in quotes.
[[nodiscard]] Bytes SerializeSignature(const SchnorrSignature& signature);
[[nodiscard]] SchnorrSignature DeserializeSignature(BytesView data);

/// One signature-verification instance for SchnorrVerifyBatch.  The
/// message is viewed, not copied; it must outlive the call.
struct SchnorrBatchItem {
  U128 public_value = 0;
  BytesView message{};
  SchnorrSignature signature{};
};

/// Verifies a batch with one random-linear-combination aggregate check
/// instead of two full exponentiations per item: with odd 64-bit
/// weights z_i drawn from an HMAC-DRBG seeded by a hash of the whole
/// batch, all signatures are valid iff
///   g^{sum z_i s_i} == prod R_i^{z_i} * prod_y y^{sum z_i e_i}
/// (up to a 2^-64 aggregation collision).  The public-key side groups
/// by distinct y, so a batch from one participant — the ingest shape —
/// costs one ladder for the whole batch plus ~32 multiplies per item.
/// On aggregate mismatch the batch is bisected, with an exact per-item
/// g^{s_i} == R_i * y_i^{e_i} check at the leaves, so every invalid
/// item is attributed precisely.  Returns the indices of invalid items
/// in ascending order; empty means the batch verified.
[[nodiscard]] std::vector<std::size_t> SchnorrVerifyBatch(
    std::span<const SchnorrBatchItem> items);

}  // namespace caltrain::crypto
