#include "crypto/isa.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace caltrain::crypto {
namespace {

// Tier caps in ascending order; the env var names one of these and
// each family is clamped to min(cap, hardware support).
enum class TierCap { kScalar = 0, kAesni = 1, kVaes = 2, kAuto = 3 };

TierCap ParseTierCap(const char* name) {
  if (name == nullptr || std::strcmp(name, "auto") == 0) return TierCap::kAuto;
  if (std::strcmp(name, "scalar") == 0) return TierCap::kScalar;
  if (std::strcmp(name, "aesni") == 0) return TierCap::kAesni;
  if (std::strcmp(name, "vaes") == 0) return TierCap::kVaes;
  // Unknown value: fall back to scalar so a typo'd override never
  // silently re-enables the paths the caller was trying to disable.
  return TierCap::kScalar;
}

CryptoDispatch DetectHardware() {
  CryptoDispatch d;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  const bool sse2 = __builtin_cpu_supports("sse2");
  const bool ssse3 = __builtin_cpu_supports("ssse3");
  const bool sse41 = __builtin_cpu_supports("sse4.1");
  const bool aes = __builtin_cpu_supports("aes") && sse41;
  const bool pclmul = __builtin_cpu_supports("pclmul") && sse41;
  const bool avx2 = __builtin_cpu_supports("avx2");
  const bool vaes = __builtin_cpu_supports("vaes") && avx2;
  const bool shani = __builtin_cpu_supports("sha") && sse41;
  if (aes) d.aes = vaes ? AesImpl::kVaes : AesImpl::kAesni;
  if (pclmul) d.ghash = GhashImpl::kPclmul;
  if (shani) {
    d.sha256 = Sha256Impl::kShani;
  } else if (ssse3 && sse2) {
    d.sha256 = Sha256Impl::kSsse3;
  }
  d.sha256_mb = avx2 && ssse3;
#endif
  return d;
}

CryptoDispatch ApplyCap(CryptoDispatch hw, TierCap cap) {
  CryptoDispatch d = hw;
  if (cap == TierCap::kAuto) return d;
  if (cap < TierCap::kVaes && d.aes == AesImpl::kVaes) d.aes = AesImpl::kAesni;
  if (cap < TierCap::kAesni) {
    d.aes = AesImpl::kScalar;
    d.ghash = GhashImpl::kScalar;
    d.sha256 = Sha256Impl::kScalar;
    d.sha256_mb = false;
  } else if (cap < TierCap::kVaes && d.sha256 == Sha256Impl::kShani) {
    // SHA-NI rides the top tier; the aesni tier keeps the SSSE3
    // message-schedule path so the middle tier is testable everywhere.
    CryptoDispatch fallback = hw;
    d.sha256 = (fallback.sha256 != Sha256Impl::kScalar) ? Sha256Impl::kSsse3
                                                        : Sha256Impl::kScalar;
  }
  return d;
}

struct DispatchState {
  CryptoDispatch active;
  char summary[64];

  DispatchState() {
    active = ApplyCap(DetectHardware(),
                      ParseTierCap(std::getenv("CALTRAIN_CRYPTO_ISA")));
    RefreshSummary();
  }

  void RefreshSummary() {
    const char* aes_name =
        active.aes == AesImpl::kVaes
            ? "vaes"
            : (active.aes == AesImpl::kAesni ? "aesni" : "scalar");
    const char* ghash_name =
        active.ghash == GhashImpl::kPclmul ? "pclmul" : "scalar";
    const char* sha_name =
        active.sha256 == Sha256Impl::kShani
            ? "shani"
            : (active.sha256 == Sha256Impl::kSsse3 ? "ssse3" : "scalar");
    std::snprintf(summary, sizeof(summary), "aes=%s ghash=%s sha256=%s",
                  aes_name, ghash_name, sha_name);
  }
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

}  // namespace

const CryptoDispatch& ActiveDispatch() noexcept { return State().active; }

const char* ActiveIsaSummary() noexcept { return State().summary; }

CryptoDispatch HardwareDispatch() noexcept { return DetectHardware(); }

ScopedIsaOverride::ScopedIsaOverride(const char* tier_name) noexcept
    : saved_(State().active) {
  State().active = ApplyCap(DetectHardware(), ParseTierCap(tier_name));
  State().RefreshSummary();
}

ScopedIsaOverride::~ScopedIsaOverride() {
  State().active = saved_;
  State().RefreshSummary();
}

}  // namespace caltrain::crypto
