#include "crypto/schnorr.hpp"

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace caltrain::crypto {

namespace {

/// Challenge e = H(R || y || m) reduced mod (p-1).
U128 Challenge(U128 commitment, U128 public_value, BytesView message) {
  Sha256 hasher;
  const Bytes r_bytes = U128ToBytes(commitment);
  const Bytes y_bytes = U128ToBytes(public_value);
  hasher.Update(BytesView(r_bytes.data(), r_bytes.size()));
  hasher.Update(BytesView(y_bytes.data(), y_bytes.size()));
  hasher.Update(message);
  const Sha256Digest digest = hasher.Finish();
  const U128 raw = U128FromBytes(BytesView(digest.data(), 16));
  return raw % (GroupPrime() - 1);
}

}  // namespace

SchnorrKeyPair SchnorrGenerate(HmacDrbg& drbg) {
  SchnorrKeyPair kp;
  kp.secret = RandomScalar(drbg);
  kp.public_value = PowMod(GroupGenerator(), kp.secret, GroupPrime());
  return kp;
}

SchnorrSignature SchnorrSign(const SchnorrKeyPair& key, BytesView message,
                             HmacDrbg& drbg) {
  const U128 p = GroupPrime();
  const U128 order = p - 1;
  const U128 k = RandomScalar(drbg);
  SchnorrSignature sig;
  sig.commitment = PowMod(GroupGenerator(), k, p);
  const U128 e = Challenge(sig.commitment, key.public_value, message);
  sig.response = AddMod(k % order, MulMod(e, key.secret, order), order);
  return sig;
}

bool SchnorrVerify(U128 public_value, BytesView message,
                   const SchnorrSignature& signature) noexcept {
  const U128 p = GroupPrime();
  if (public_value < 2 || public_value >= p) return false;
  if (signature.commitment < 1 || signature.commitment >= p) return false;
  const U128 e = Challenge(signature.commitment, public_value, message);
  const U128 lhs = PowMod(GroupGenerator(), signature.response, p);
  const U128 rhs =
      MulMod(signature.commitment, PowMod(public_value, e, p), p);
  return lhs == rhs;
}

Bytes SerializeSignature(const SchnorrSignature& signature) {
  Bytes out = U128ToBytes(signature.commitment);
  const Bytes response = U128ToBytes(signature.response);
  Append(out, BytesView(response.data(), response.size()));
  return out;
}

SchnorrSignature DeserializeSignature(BytesView data) {
  CALTRAIN_REQUIRE(data.size() == 32, "Schnorr signature must be 32 bytes");
  SchnorrSignature sig;
  sig.commitment = U128FromBytes(data.subspan(0, 16));
  sig.response = U128FromBytes(data.subspan(16, 16));
  return sig;
}

}  // namespace caltrain::crypto
