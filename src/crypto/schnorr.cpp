#include "crypto/schnorr.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace caltrain::crypto {

namespace {

/// Challenge e = H(R || y || m) reduced mod (p-1).
U128 Challenge(U128 commitment, U128 public_value, BytesView message) {
  Sha256 hasher;
  const Bytes r_bytes = U128ToBytes(commitment);
  const Bytes y_bytes = U128ToBytes(public_value);
  hasher.Update(BytesView(r_bytes.data(), r_bytes.size()));
  hasher.Update(BytesView(y_bytes.data(), y_bytes.size()));
  hasher.Update(message);
  const Sha256Digest digest = hasher.Finish();
  const U128 raw = U128FromBytes(BytesView(digest.data(), 16));
  return raw % (GroupPrime() - 1);
}

}  // namespace

SchnorrKeyPair SchnorrGenerate(HmacDrbg& drbg) {
  SchnorrKeyPair kp;
  kp.secret = RandomScalar(drbg);
  kp.public_value = PowMod(GroupGenerator(), kp.secret, GroupPrime());
  return kp;
}

SchnorrSignature SchnorrSign(const SchnorrKeyPair& key, BytesView message,
                             HmacDrbg& drbg) {
  const U128 p = GroupPrime();
  const U128 order = p - 1;
  const U128 k = RandomScalar(drbg);
  SchnorrSignature sig;
  sig.commitment = PowMod(GroupGenerator(), k, p);
  const U128 e = Challenge(sig.commitment, key.public_value, message);
  sig.response = AddMod(k % order, MulMod(e, key.secret, order), order);
  return sig;
}

bool SchnorrVerify(U128 public_value, BytesView message,
                   const SchnorrSignature& signature) noexcept {
  const U128 p = GroupPrime();
  if (public_value < 2 || public_value >= p) return false;
  if (signature.commitment < 1 || signature.commitment >= p) return false;
  const U128 e = Challenge(signature.commitment, public_value, message);
  const U128 lhs = PowMod(GroupGenerator(), signature.response, p);
  const U128 rhs =
      MulMod(signature.commitment, PowMod(public_value, e, p), p);
  return lhs == rhs;
}

Bytes SerializeSignature(const SchnorrSignature& signature) {
  Bytes out = U128ToBytes(signature.commitment);
  const Bytes response = U128ToBytes(signature.response);
  Append(out, BytesView(response.data(), response.size()));
  return out;
}

SchnorrSignature DeserializeSignature(BytesView data) {
  CALTRAIN_REQUIRE(data.size() == 32, "Schnorr signature must be 32 bytes");
  SchnorrSignature sig;
  sig.commitment = U128FromBytes(data.subspan(0, 16));
  sig.response = U128FromBytes(data.subspan(16, 16));
  return sig;
}

namespace {

/// State shared by the batch aggregate checks: per-item cached
/// challenges e_i and the 64-bit RLC weights z_i.
struct BatchContext {
  std::span<const SchnorrBatchItem> items;
  std::vector<U128> e;
  std::vector<std::uint64_t> z;
  std::vector<bool> structural_ok;
};

/// True iff g^{sum z_i s_i} == prod R_i^{z_i} * prod_y y^{sum z_i e_i}
/// over [lo, hi), skipping structurally invalid items.  The commitment
/// product interleaves one square-and-multiply across all items (64
/// squarings total, expected 32 multiplies per item); the public-key
/// side groups by distinct y so it costs one 127-bit ladder per
/// distinct key — for the ingest shape (a whole batch from one
/// participant) that's one ladder for the entire range instead of one
/// per record, which is where the batch speedup comes from.
bool RangeAggregateOk(const BatchContext& ctx, std::size_t lo,
                      std::size_t hi) {
  const U128 p = GroupPrime();
  const U128 order = p - 1;
  U128 exp_sum = 0;
  std::vector<U128> keys;      // distinct public values in the range
  std::vector<U128> key_exp;   // per key: sum z_i e_i mod (p-1)
  bool any = false;
  for (std::size_t i = lo; i < hi; ++i) {
    if (!ctx.structural_ok[i]) continue;
    any = true;
    exp_sum = AddMod(
        exp_sum, MulMod(ctx.items[i].signature.response, ctx.z[i], order),
        order);
    const U128 y = ctx.items[i].public_value;
    std::size_t k = 0;
    while (k < keys.size() && keys[k] != y) ++k;
    if (k == keys.size()) {
      keys.push_back(y);
      key_exp.push_back(0);
    }
    key_exp[k] = AddMod(key_exp[k], MulMod(ctx.z[i], ctx.e[i], order),
                        order);
  }
  if (!any) return true;

  U128 rhs = 1;
  for (int bit = 63; bit >= 0; --bit) {
    rhs = MulMod(rhs, rhs, p);
    for (std::size_t i = lo; i < hi; ++i) {
      if (!ctx.structural_ok[i]) continue;
      if ((ctx.z[i] >> bit) & 1) {
        rhs = MulMod(rhs, ctx.items[i].signature.commitment, p);
      }
    }
  }
  for (std::size_t k = 0; k < keys.size(); ++k) {
    rhs = MulMod(rhs, PowMod(keys[k], key_exp[k], p), p);
  }
  return PowMod(GroupGenerator(), exp_sum, p) == rhs;
}

/// Bisect a failing range down to the offending items.  Leaves run the
/// exact serial check g^{s_i} == R_i * y_i^{e_i} with the cached
/// challenge, so attribution matches per-item SchnorrVerify.
void BisectInvalid(const BatchContext& ctx, std::size_t lo, std::size_t hi,
                   std::vector<std::size_t>& invalid) {
  if (hi - lo == 1) {
    if (!ctx.structural_ok[lo]) return;  // already reported
    const U128 p = GroupPrime();
    const SchnorrBatchItem& item = ctx.items[lo];
    const U128 lhs = PowMod(GroupGenerator(), item.signature.response, p);
    const U128 rhs = MulMod(item.signature.commitment,
                            PowMod(item.public_value, ctx.e[lo], p), p);
    if (lhs != rhs) invalid.push_back(lo);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  if (!RangeAggregateOk(ctx, lo, mid)) BisectInvalid(ctx, lo, mid, invalid);
  if (!RangeAggregateOk(ctx, mid, hi)) BisectInvalid(ctx, mid, hi, invalid);
}

}  // namespace

std::vector<std::size_t> SchnorrVerifyBatch(
    std::span<const SchnorrBatchItem> items) {
  std::vector<std::size_t> invalid;
  if (items.empty()) return invalid;
  const U128 p = GroupPrime();

  BatchContext ctx{items, {}, {}, {}};
  ctx.e.resize(items.size());
  ctx.z.resize(items.size());
  ctx.structural_ok.assign(items.size(), true);

  // Range checks (identical to SchnorrVerify) and per-item challenges;
  // no exponentiation happens here — the aggregate check amortizes the
  // ladders across the batch.
  Sha256 batch_hasher;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const SchnorrBatchItem& item = items[i];
    if (item.public_value < 2 || item.public_value >= p ||
        item.signature.commitment < 1 || item.signature.commitment >= p) {
      ctx.structural_ok[i] = false;
      invalid.push_back(i);
      continue;
    }
    ctx.e[i] =
        Challenge(item.signature.commitment, item.public_value, item.message);
    const Bytes enc = SerializeSignature(item.signature);
    const Bytes y = U128ToBytes(item.public_value);
    batch_hasher.Update(BytesView(enc.data(), enc.size()));
    batch_hasher.Update(BytesView(y.data(), y.size()));
    batch_hasher.Update(item.message);
  }

  // RLC weights from a DRBG seeded by the batch content, so a forger
  // cannot pick signatures against known weights.  Odd => nonzero.
  const Sha256Digest seed = batch_hasher.Finish();
  HmacDrbg drbg(BytesView(seed.data(), seed.size()),
                BytesOf("schnorr-batch-rlc"));
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (ctx.structural_ok[i]) ctx.z[i] = drbg.GenerateU64() | 1;
  }

  if (!RangeAggregateOk(ctx, 0, items.size())) {
    BisectInvalid(ctx, 0, items.size(), invalid);
  }
  std::sort(invalid.begin(), invalid.end());
  return invalid;
}

}  // namespace caltrain::crypto
