// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).  Used by the secure
// channel key schedule, sealed storage, and the DRBG.
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace caltrain::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
[[nodiscard]] Sha256Digest HmacSha256(BytesView key, BytesView data) noexcept;

/// HKDF-Extract: PRK = HMAC(salt, ikm).
[[nodiscard]] Sha256Digest HkdfExtract(BytesView salt, BytesView ikm) noexcept;

/// HKDF-Expand: derives `length` bytes from PRK with context `info`.
/// length must be <= 255 * 32.
[[nodiscard]] Bytes HkdfExpand(const Sha256Digest& prk, BytesView info,
                               std::size_t length);

/// Extract-then-expand convenience.
[[nodiscard]] Bytes Hkdf(BytesView salt, BytesView ikm, BytesView info,
                         std::size_t length);

}  // namespace caltrain::crypto
