#include "crypto/group.hpp"

#include "util/error.hpp"

namespace caltrain::crypto {

U128 GroupPrime() noexcept { return (U128{1} << 127) - 1; }

U128 GroupGenerator() noexcept { return 7; }

U128 AddMod(U128 a, U128 b, U128 m) noexcept {
  // a, b < m <= 2^127 - 1, so a + b < 2^128: no overflow.
  const U128 s = a + b;
  return s >= m ? s - m : s;
}

U128 MulMod(U128 a, U128 b, U128 m) noexcept {
  U128 result = 0;
  a %= m;
  while (b != 0) {
    if (b & 1) result = AddMod(result, a, m);
    a = AddMod(a, a, m);
    b >>= 1;
  }
  return result;
}

U128 PowMod(U128 base, U128 exp, U128 m) noexcept {
  U128 result = 1;
  base %= m;
  while (exp != 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

Bytes U128ToBytes(U128 v) {
  Bytes out(16);
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return out;
}

U128 U128FromBytes(BytesView data) {
  CALTRAIN_REQUIRE(data.size() == 16, "U128 encoding must be 16 bytes");
  U128 v = 0;
  for (int i = 15; i >= 0; --i) {
    v = (v << 8) | data[static_cast<std::size_t>(i)];
  }
  return v;
}

U128 RandomScalar(HmacDrbg& drbg) {
  const U128 p = GroupPrime();
  for (;;) {
    const Bytes raw = drbg.Generate(16);
    U128 v = U128FromBytes(raw);
    v &= (U128{1} << 127) - 1;  // clamp to 127 bits
    if (v >= 2 && v <= p - 2) return v;
  }
}

DhKeyPair DhGenerate(HmacDrbg& drbg) {
  DhKeyPair kp;
  kp.secret = RandomScalar(drbg);
  kp.public_value = PowMod(GroupGenerator(), kp.secret, GroupPrime());
  return kp;
}

U128 DhSharedSecret(U128 secret, U128 peer_public) {
  const U128 p = GroupPrime();
  CALTRAIN_REQUIRE(peer_public >= 2 && peer_public < p,
                   "peer DH public value outside the group");
  return PowMod(peer_public, secret, p);
}

}  // namespace caltrain::crypto
