#include "crypto/group.hpp"

#include "util/error.hpp"

namespace caltrain::crypto {

namespace {

constexpr U128 kMersenne127 = (U128{1} << 127) - 1;

/// 254-bit product of two values < 2^127, folded mod p = 2^127 - 1.
/// The four 64x64->128 limb products give the product as hi*2^128 + lo;
/// since 2^128 = 2 (mod p) the high half folds in with a single shift,
/// and one more fold of bit 127 lands the result in [0, 2^127).
U128 MulModMersenne127(U128 a, U128 b) noexcept {
  const std::uint64_t a0 = static_cast<std::uint64_t>(a);
  const std::uint64_t a1 = static_cast<std::uint64_t>(a >> 64);
  const std::uint64_t b0 = static_cast<std::uint64_t>(b);
  const std::uint64_t b1 = static_cast<std::uint64_t>(b >> 64);

  const U128 p00 = static_cast<U128>(a0) * b0;
  const U128 p01 = static_cast<U128>(a0) * b1;
  const U128 p10 = static_cast<U128>(a1) * b0;
  const U128 p11 = static_cast<U128>(a1) * b1;

  const U128 mid = p01 + p10;
  U128 hi = p11 + (mid >> 64);
  if (mid < p01) hi += U128{1} << 64;  // carry out of the mid sum
  const U128 lo = p00 + (mid << 64);
  if (lo < p00) ++hi;

  // a, b < 2^127 so hi < 2^126 and hi << 1 cannot overflow.
  U128 r = (lo & kMersenne127) + (lo >> 127) + (hi << 1);
  r = (r & kMersenne127) + (r >> 127);
  if (r >= kMersenne127) r -= kMersenne127;
  return r;
}

}  // namespace

U128 GroupPrime() noexcept { return kMersenne127; }

U128 GroupGenerator() noexcept { return 7; }

U128 AddMod(U128 a, U128 b, U128 m) noexcept {
  // a, b < m <= 2^127 - 1, so a + b < 2^128: no overflow.
  const U128 s = a + b;
  return s >= m ? s - m : s;
}

U128 MulMod(U128 a, U128 b, U128 m) noexcept {
  if (m == kMersenne127) return MulModMersenne127(a % m, b % m);
  U128 result = 0;
  a %= m;
  while (b != 0) {
    if (b & 1) result = AddMod(result, a, m);
    a = AddMod(a, a, m);
    b >>= 1;
  }
  return result;
}

U128 PowMod(U128 base, U128 exp, U128 m) noexcept {
  U128 result = 1;
  base %= m;
  while (exp != 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

Bytes U128ToBytes(U128 v) {
  Bytes out(16);
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return out;
}

U128 U128FromBytes(BytesView data) {
  CALTRAIN_REQUIRE(data.size() == 16, "U128 encoding must be 16 bytes");
  U128 v = 0;
  for (int i = 15; i >= 0; --i) {
    v = (v << 8) | data[static_cast<std::size_t>(i)];
  }
  return v;
}

U128 RandomScalar(HmacDrbg& drbg) {
  const U128 p = GroupPrime();
  for (;;) {
    const Bytes raw = drbg.Generate(16);
    U128 v = U128FromBytes(raw);
    v &= (U128{1} << 127) - 1;  // clamp to 127 bits
    if (v >= 2 && v <= p - 2) return v;
  }
}

DhKeyPair DhGenerate(HmacDrbg& drbg) {
  DhKeyPair kp;
  kp.secret = RandomScalar(drbg);
  kp.public_value = PowMod(GroupGenerator(), kp.secret, GroupPrime());
  return kp;
}

U128 DhSharedSecret(U128 secret, U128 peer_public) {
  const U128 p = GroupPrime();
  CALTRAIN_REQUIRE(peer_public >= 2 && peer_public < p,
                   "peer DH public value outside the group");
  return PowMod(peer_public, secret, p);
}

}  // namespace caltrain::crypto
