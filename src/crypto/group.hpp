// Prime-field group arithmetic over the Mersenne prime p = 2^127 - 1,
// plus finite-field Diffie–Hellman key agreement on top of it.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper's prototype uses
// mbedtls-SGX (RSA/ECDHE) for key provisioning and Intel's EPID scheme
// for attestation.  Neither is available offline, so this module
// provides a self-contained group with the same *protocol* interface.
// A 127-bit group is simulation-grade — large enough to be non-trivial
// and exercise every code path (key agreement, signing, serialization),
// but NOT production-strength cryptography.
#pragma once

#include <cstdint>

#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace caltrain::crypto {

/// Field/scalar element; values are kept in [0, 2^127 - 1).
using U128 = unsigned __int128;

/// The group modulus p = 2^127 - 1 (a Mersenne prime).
[[nodiscard]] U128 GroupPrime() noexcept;

/// Fixed generator used by DH and Schnorr.
[[nodiscard]] U128 GroupGenerator() noexcept;

/// (a + b) mod m.  Both inputs must already be < m.
[[nodiscard]] U128 AddMod(U128 a, U128 b, U128 m) noexcept;

/// (a * b) mod m.  For m = 2^127 - 1 this takes a Mersenne fast path
/// (four 64x64 limb products + shift folds, no loop); any other modulus
/// falls back to bitwise double-and-add.
[[nodiscard]] U128 MulMod(U128 a, U128 b, U128 m) noexcept;

/// (base ^ exp) mod m via square-and-multiply.
[[nodiscard]] U128 PowMod(U128 base, U128 exp, U128 m) noexcept;

/// 16-byte little-endian encoding.
[[nodiscard]] Bytes U128ToBytes(U128 v);

/// Decodes 16 little-endian bytes; throws on wrong length.
[[nodiscard]] U128 U128FromBytes(BytesView data);

/// Uniform scalar in [1, p - 2] drawn from the DRBG.
[[nodiscard]] U128 RandomScalar(HmacDrbg& drbg);

/// Classic DH: keypair (x, g^x) and shared-secret computation.
struct DhKeyPair {
  U128 secret = 0;
  U128 public_value = 0;
};

[[nodiscard]] DhKeyPair DhGenerate(HmacDrbg& drbg);

/// shared = peer_public ^ secret mod p; throws if peer_public is not a
/// valid group element (0, 1, or >= p), which rejects small-subgroup
/// style garbage.
[[nodiscard]] U128 DhSharedSecret(U128 secret, U128 peer_public);

}  // namespace caltrain::crypto
