// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 variant).
//
// Models the on-chip hardware random number generator the paper uses
// inside the enclave for data augmentation and for protocol nonces.
// Deterministic when seeded explicitly, which keeps experiments
// reproducible while exercising the same code path as RDRAND would.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace caltrain::crypto {

class HmacDrbg {
 public:
  /// Instantiates from entropy (any length > 0) and an optional
  /// personalization string.
  explicit HmacDrbg(BytesView entropy, BytesView personalization = {});

  /// Mixes fresh entropy into the state.
  void Reseed(BytesView entropy);

  /// Generates `length` pseudo-random bytes.
  [[nodiscard]] Bytes Generate(std::size_t length);

  /// Convenience: a fresh 12-byte GCM nonce.
  [[nodiscard]] std::array<std::uint8_t, 12> GenerateNonce();

  /// Convenience: uniform u64 (for in-enclave augmentation decisions).
  [[nodiscard]] std::uint64_t GenerateU64();

 private:
  void Update(BytesView provided);

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 32> value_{};
};

}  // namespace caltrain::crypto
