#include "crypto/drbg.hpp"

#include "crypto/hmac.hpp"
#include "util/error.hpp"

namespace caltrain::crypto {

HmacDrbg::HmacDrbg(BytesView entropy, BytesView personalization) {
  CALTRAIN_REQUIRE(!entropy.empty(), "DRBG requires entropy");
  key_.fill(0x00);
  value_.fill(0x01);
  Bytes seed(entropy.begin(), entropy.end());
  Append(seed, personalization);
  Update(seed);
}

void HmacDrbg::Reseed(BytesView entropy) {
  CALTRAIN_REQUIRE(!entropy.empty(), "DRBG reseed requires entropy");
  Update(entropy);
}

void HmacDrbg::Update(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes msg(value_.begin(), value_.end());
  msg.push_back(0x00);
  Append(msg, provided);
  Sha256Digest k = HmacSha256(BytesView(key_.data(), key_.size()),
                              BytesView(msg.data(), msg.size()));
  std::copy(k.begin(), k.end(), key_.begin());
  Sha256Digest v = HmacSha256(BytesView(key_.data(), key_.size()),
                              BytesView(value_.data(), value_.size()));
  std::copy(v.begin(), v.end(), value_.begin());

  if (provided.empty()) return;
  // Second round with 0x01 separator, as the spec requires.
  msg.assign(value_.begin(), value_.end());
  msg.push_back(0x01);
  Append(msg, provided);
  k = HmacSha256(BytesView(key_.data(), key_.size()),
                 BytesView(msg.data(), msg.size()));
  std::copy(k.begin(), k.end(), key_.begin());
  v = HmacSha256(BytesView(key_.data(), key_.size()),
                 BytesView(value_.data(), value_.size()));
  std::copy(v.begin(), v.end(), value_.begin());
}

Bytes HmacDrbg::Generate(std::size_t length) {
  Bytes out;
  out.reserve(length);
  while (out.size() < length) {
    const Sha256Digest v = HmacSha256(BytesView(key_.data(), key_.size()),
                                      BytesView(value_.data(), value_.size()));
    std::copy(v.begin(), v.end(), value_.begin());
    const std::size_t take = std::min(v.size(), length - out.size());
    out.insert(out.end(), v.begin(), v.begin() + static_cast<std::ptrdiff_t>(take));
  }
  Update({});
  return out;
}

std::array<std::uint8_t, 12> HmacDrbg::GenerateNonce() {
  const Bytes raw = Generate(12);
  std::array<std::uint8_t, 12> nonce{};
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

std::uint64_t HmacDrbg::GenerateU64() {
  const Bytes raw = Generate(8);
  return LoadLe64(raw.data());
}

}  // namespace caltrain::crypto
