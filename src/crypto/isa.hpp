// Runtime ISA dispatch for the crypto substrate.
//
// Every crypto primitive keeps its portable scalar implementation as
// the always-available reference; when the CPU has the matching x86
// extensions, hot paths switch to hardware kernels (AES-NI / VAES for
// AES-CTR, PCLMUL for GHASH, SHA-NI or an SSSE3 message schedule for
// SHA-256).  All accelerated paths are BIT-COMPATIBLE with the scalar
// reference: same ciphertexts, tags and digests for every input — the
// forced-ISA parity sweep in crypto_test enforces this.
//
// Selection happens once, at first use: cpuid caps each family to what
// the hardware supports, and the CALTRAIN_CRYPTO_ISA environment
// variable can lower the cap so tests, CI and benches can force every
// path:
//
//   auto    best supported tier per family (default)
//   scalar  portable reference everywhere
//   aesni   AES-NI 4-lane CTR, PCLMUL GHASH, SSSE3 SHA-256 schedule
//   vaes    adds VAES 8-lane CTR and SHA-NI SHA-256
//
// A named tier is a *cap*, not a demand: `vaes` on a CPU without VAES
// but with SHA-NI still runs AES-NI + SHA-NI.  Unlike the GEMM tile's
// target_clones, dispatch here goes through plain function-pointer-free
// enum checks resolved from this header — no IFUNC resolvers, so the
// accelerated paths run unmodified under ASan/TSan.
#pragma once

namespace caltrain::crypto {

/// Per-family implementation actually selected (after cpuid + env cap).
enum class AesImpl { kScalar, kAesni, kVaes };
enum class GhashImpl { kScalar, kPclmul };
enum class Sha256Impl { kScalar, kSsse3, kShani };

struct CryptoDispatch {
  AesImpl aes = AesImpl::kScalar;
  GhashImpl ghash = GhashImpl::kScalar;
  Sha256Impl sha256 = Sha256Impl::kScalar;
  // AVX2 8-lane multi-buffer SHA-256 permitted for Sha256Batch (false
  // when the env cap is `scalar` or the CPU lacks AVX2; SHA-NI lanes
  // are fast enough that the shani tier loops them instead).
  bool sha256_mb = false;
};

/// The active dispatch table.  Resolved once from cpuid and
/// CALTRAIN_CRYPTO_ISA on first call; subsequent calls are a load.
[[nodiscard]] const CryptoDispatch& ActiveDispatch() noexcept;

/// Human-readable summary of the active tiers, e.g.
/// "aes=vaes ghash=pclmul sha256=shani" (stable format — the bench
/// JSON and the CI throughput gate parse it).
[[nodiscard]] const char* ActiveIsaSummary() noexcept;

/// What the hardware supports, ignoring the env cap (for tests/benches
/// deciding which forced tiers are meaningful on this machine).
[[nodiscard]] CryptoDispatch HardwareDispatch() noexcept;

/// Test/bench hook: force the dispatch to the tier cap named like the
/// env values ("scalar", "aesni", "vaes", "auto") for this object's
/// lifetime, clamped to hardware support.  NOT thread-safe — callers
/// must not run concurrent crypto while switching (tests and the bench
/// harness are single-threaded at switch points).
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(const char* tier_name) noexcept;
  ~ScopedIsaOverride();
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  CryptoDispatch saved_;
};

}  // namespace caltrain::crypto
