// SHA-256 (FIPS 180-4).  Used for enclave measurements, training-data
// hash digests (the H component of the linkage tuple), HMAC, and the
// secure-channel transcript hash.
//
// Block compression dispatches at runtime to SHA-NI (or an SSSE3-
// assisted message schedule on CPUs without it); Sha256Batch hashes
// independent buffers — e.g. every record of an ingest batch — eight
// at a time in AVX2 lanes.  See crypto/isa.hpp for tier selection and
// the CALTRAIN_CRYPTO_ISA override; all paths are bit-identical to
// the portable implementation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace caltrain::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  void Update(BytesView data) noexcept;
  /// Finalizes and returns the digest; the object must not be reused
  /// afterwards without constructing a new one.
  [[nodiscard]] Sha256Digest Finish() noexcept;

 private:
  friend void Sha256Batch(std::span<const BytesView> inputs,
                          Sha256Digest* digests) noexcept;

  /// State injection for Sha256Batch: resumes hashing as if
  /// `total_bytes` bytes had already been compressed into `state` —
  /// how the multi-buffer kernel's common-prefix result hands each
  /// lane back to the portable tail/padding path.
  Sha256(const std::array<std::uint32_t, 8>& state,
         std::uint64_t total_bytes) noexcept;

  void ProcessBlock(const std::uint8_t* block) noexcept;
  /// Runs `nblocks` consecutive 64-byte blocks through the dispatched
  /// compression kernel (SHA-NI / SSSE3 / scalar).
  void ProcessBlocks(const std::uint8_t* data, std::size_t nblocks) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Sha256Digest Sha256Hash(BytesView data) noexcept;

/// Hashes `inputs.size()` independent buffers into `digests` (which
/// must have room for one digest per input).  Equivalent to calling
/// Sha256Hash on each input; when the CPU has AVX2 (and no SHA-NI,
/// which is faster per lane already), groups of eight buffers are
/// compressed together in the eight 32-bit lanes of AVX2 registers —
/// the ingest-batch fast path for record content hashes.
void Sha256Batch(std::span<const BytesView> inputs,
                 Sha256Digest* digests) noexcept;

/// Digest as a caltrain::Bytes value (for serialization).
[[nodiscard]] Bytes ToBytes(const Sha256Digest& digest);

}  // namespace caltrain::crypto
