// SHA-256 (FIPS 180-4).  Used for enclave measurements, training-data
// hash digests (the H component of the linkage tuple), HMAC, and the
// secure-channel transcript hash.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace caltrain::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  void Update(BytesView data) noexcept;
  /// Finalizes and returns the digest; the object must not be reused
  /// afterwards without constructing a new one.
  [[nodiscard]] Sha256Digest Finish() noexcept;

 private:
  void ProcessBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Sha256Digest Sha256Hash(BytesView data) noexcept;

/// Digest as a caltrain::Bytes value (for serialization).
[[nodiscard]] Bytes ToBytes(const Sha256Digest& digest);

}  // namespace caltrain::crypto
