// Crash-durable write-ahead journal (ISSUE 8).
//
// The journal is the durability spine of the serving layer: every
// state mutation the service acknowledges is first appended here as a
// CRC-framed, length-prefixed record, so a process that dies at any
// instruction can be rebuilt bit-identically from the byte prefix that
// reached the file.
//
// On-disk layout:
//
//   header   "CTWALv1\0" magic (8 bytes) + u32 LE format version
//   frame*   u32 LE payload length | u32 LE CRC32C(payload) | payload
//
// Write path:
//   * Append() frames one payload and write(2)s it at the tail.  A
//     failed or short write truncates the file back to the frame start
//     before the error propagates, so a *retried* append never leaves
//     garbage mid-file (an un-retried torn tail is recovery's job).
//   * Sync() is a group commit: concurrent committers elect a leader,
//     the leader issues ONE fdatasync covering every byte appended
//     before it started, and the followers wait on the covered LSN.
//     N worker threads committing concurrently pay ~1 fsync per wave
//     instead of one each.
//
// Read path (recovery):
//   * ScanJournal() walks the frames, validating lengths and CRCs.
//     The first invalid frame ends the scan: everything before it is
//     replayed, everything from it on is a *torn tail* — reported, so
//     recovery can truncate it and append from the last valid byte.
//     A torn tail is never silently accepted as data.
//
// Fault points: "persist.append" (eio / short / torn / crash) and
// "persist.sync" (eio / crash).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/bytes.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::persist {

/// CRC32C (Castagnoli), slicing-by-8 software implementation.  Used for
/// journal frames and snapshot trailers.
[[nodiscard]] std::uint32_t Crc32c(BytesView data,
                                   std::uint32_t seed = 0) noexcept;

/// When appended frames are forced to storage.
enum class SyncMode {
  kNone,   ///< never fsync (tests / benches measuring pure framing)
  kGroup,  ///< group-committed fdatasync on every Sync() call
};

/// Result of scanning a journal file for valid frames.
struct ScanReport {
  bool exists = false;           ///< the file was present
  bool header_valid = false;     ///< magic + version matched
  std::uint64_t frames = 0;      ///< valid frames delivered
  std::uint64_t valid_bytes = 0;  ///< offset just past the last valid frame
  std::uint64_t truncated_bytes = 0;  ///< torn-tail bytes past valid_bytes
};

/// Walks every valid frame of `path`, invoking `on_frame` with each
/// payload in order.  Stops at the first torn/corrupt frame and
/// reports how many bytes would need truncation.  A missing file is a
/// clean empty journal (exists=false); a present file whose header is
/// bad is corruption (header_valid=false) — the caller decides whether
/// that is fatal.
[[nodiscard]] ScanReport ScanJournal(
    const std::string& path,
    const std::function<void(BytesView payload)>& on_frame);

class Journal {
 public:
  /// Opens `path` for appending, creating it (with a fresh header) if
  /// absent.  `resume_at` is ScanReport::valid_bytes from a prior scan:
  /// anything past it (a torn tail) is truncated away before the first
  /// append.  Pass 0 for a brand-new journal.
  static std::unique_ptr<Journal> Open(const std::string& path,
                                       SyncMode mode,
                                       std::uint64_t resume_at = 0);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one frame; returns its LSN (1-based frame ordinal).
  /// Throws Error(kUnavailable) on I/O failure after restoring the
  /// file tail to the pre-append offset (safe to retry).  Callers that
  /// genuinely do not need the LSN drop it with an explicit `(void)`.
  [[nodiscard]] std::uint64_t Append(BytesView payload) EXCLUDES(mu_);

  /// Group commit: returns once every frame appended before this call
  /// is durable (one leader fdatasync per wave).  No-op under kNone.
  /// Throws Error(kUnavailable) if the sync fails.
  void Sync() EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t appended_lsn() const noexcept;
  [[nodiscard]] std::uint64_t synced_lsn() const noexcept;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  Journal(std::string path, int fd, SyncMode mode, std::uint64_t tail);

  std::string path_;
  int fd_ = -1;
  SyncMode mode_;

  mutable util::Mutex mu_;
  util::CondVar sync_cv_;
  /// File offset of the next frame.
  std::uint64_t tail_ GUARDED_BY(mu_) = 0;
  /// LSN of the last appended frame.
  std::uint64_t appended_ GUARDED_BY(mu_) = 0;
  /// LSN covered by the last fsync.
  std::uint64_t synced_ GUARDED_BY(mu_) = 0;
  /// A leader is inside fdatasync.
  bool sync_in_flight_ GUARDED_BY(mu_) = false;
};

}  // namespace caltrain::persist
