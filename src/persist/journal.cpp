#include "persist/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace caltrain::persist {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'C', 'T', 'W', 'A',
                                                'L', 'v', '1', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderSize = kMagic.size() + sizeof(std::uint32_t);
constexpr std::uint32_t kMaxFrameBytes = 1U << 30;  // 1 GiB sanity bound

// ------------------------------------------------------------------ CRC32C
// Slicing-by-8 tables for the Castagnoli polynomial (0x1EDC6F41,
// reflected 0x82F63B78) — ~1-2 GB/s in portable C++, far above the
// journal's framing needs.
struct Crc32cTables {
  std::uint32_t t[8][256];
  Crc32cTables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1U) ? 0x82F63B78U : 0U);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFU];
      }
    }
  }
};

const Crc32cTables& Tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

#if defined(__x86_64__)
/// SSE4.2 crc32 instruction path — bit-compatible with the table
/// reference (same Castagnoli polynomial baked into the silicon).
__attribute__((target("sse4.2"))) std::uint32_t Crc32cHw(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) noexcept {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = __builtin_ia32_crc32qi(c32, *p++);
  return c32;
}

bool HaveSse42() noexcept {
  static const bool has = [] {
    __builtin_cpu_init();
    return static_cast<bool>(__builtin_cpu_supports("sse4.2"));
  }();
  return has;
}
#endif

std::uint32_t LoadLe32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreLe32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

[[noreturn]] void ThrowIo(const std::string& what, int err) {
  ThrowError(ErrorKind::kUnavailable,
             what + ": " + std::strerror(err));
}

/// write(2) the whole buffer, retrying EINTR; throws kUnavailable on
/// error or short write (disk full).
void WriteAll(int fd, const std::uint8_t* data, std::size_t size,
              const char* what) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo(what, errno);
    }
    if (n == 0) ThrowIo(what, ENOSPC);
    done += static_cast<std::size_t>(n);
  }
}

/// writev(2) of header + payload, retrying EINTR / partial progress;
/// avoids copying the payload into a contiguous frame buffer on the
/// hot append path.
void WritevAll(int fd, const std::uint8_t* header, std::size_t header_size,
               const std::uint8_t* payload, std::size_t payload_size,
               const char* what) {
  std::size_t done = 0;
  const std::size_t total = header_size + payload_size;
  while (done < total) {
    struct iovec iov[2];
    int iovcnt = 0;
    if (done < header_size) {
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(header + done);
      iov[iovcnt].iov_len = header_size - done;
      ++iovcnt;
    }
    const std::size_t payload_done =
        done > header_size ? done - header_size : 0;
    if (payload_done < payload_size) {
      iov[iovcnt].iov_base =
          const_cast<std::uint8_t*>(payload + payload_done);
      iov[iovcnt].iov_len = payload_size - payload_done;
      ++iovcnt;
    }
    const ssize_t n = ::writev(fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo(what, errno);
    }
    if (n == 0) ThrowIo(what, ENOSPC);
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t Crc32c(BytesView data, std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
#if defined(__x86_64__)
  if (HaveSse42()) return ~Crc32cHw(crc, p, n);
#endif
  const Crc32cTables& tb = Tables();
  while (n >= 8) {
    const std::uint32_t lo = (crc ^ LoadLe32(p));
    const std::uint32_t hi = LoadLe32(p + 4);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xFF] ^ tb.t[2][(hi >> 8) & 0xFF] ^
          tb.t[1][(hi >> 16) & 0xFF] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

// -------------------------------------------------------------------- scan

ScanReport ScanJournal(
    const std::string& path,
    const std::function<void(BytesView payload)>& on_frame) {
  ScanReport report;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return report;  // clean empty journal
    ThrowIo("journal open for scan '" + path + "'", errno);
  }
  report.exists = true;

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    ThrowIo("journal fstat '" + path + "'", err);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  Bytes content(file_size);
  std::size_t done = 0;
  while (done < file_size) {
    const ssize_t n = ::read(fd, content.data() + done, file_size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ThrowIo("journal read '" + path + "'", err);
    }
    if (n == 0) break;  // raced a concurrent truncate; treat as EOF
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  content.resize(done);

  // Header.
  if (content.size() < kHeaderSize ||
      !std::equal(kMagic.begin(), kMagic.end(), content.begin()) ||
      LoadLe32(content.data() + kMagic.size()) != kVersion) {
    // Bad or truncated header: nothing in this file is trustworthy.
    report.truncated_bytes = content.size();
    return report;
  }
  report.header_valid = true;
  report.valid_bytes = kHeaderSize;

  std::uint64_t pos = kHeaderSize;
  while (pos < content.size()) {
    if (content.size() - pos < 8) break;  // torn frame header
    const std::uint32_t len = LoadLe32(content.data() + pos);
    const std::uint32_t crc = LoadLe32(content.data() + pos + 4);
    if (len > kMaxFrameBytes || content.size() - pos - 8 < len) break;
    const BytesView payload(content.data() + pos + 8, len);
    if (Crc32c(payload) != crc) break;  // torn or corrupt payload
    on_frame(payload);
    ++report.frames;
    pos += 8 + len;
    report.valid_bytes = pos;
  }
  report.truncated_bytes = content.size() - report.valid_bytes;
  return report;
}

// ------------------------------------------------------------------- write

std::unique_ptr<Journal> Journal::Open(const std::string& path,
                                       SyncMode mode,
                                       std::uint64_t resume_at) {
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) ThrowIo("journal open '" + path + "'", errno);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    ThrowIo("journal fstat '" + path + "'", err);
  }
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  if (size == 0) {
    // Fresh journal: write the header.
    std::array<std::uint8_t, kHeaderSize> header{};
    std::copy(kMagic.begin(), kMagic.end(), header.begin());
    StoreLe32(header.data() + kMagic.size(), kVersion);
    try {
      WriteAll(fd, header.data(), header.size(), "journal header write");
    } catch (...) {
      ::close(fd);
      throw;
    }
    size = kHeaderSize;
  } else {
    // Resuming: drop the torn tail the scan identified, so the next
    // append lands at the last valid byte.
    const std::uint64_t keep = resume_at < kHeaderSize ? kHeaderSize
                                                       : resume_at;
    if (keep < size) {
      if (::ftruncate(fd, static_cast<off_t>(keep)) != 0) {
        const int err = errno;
        ::close(fd);
        ThrowIo("journal truncate '" + path + "'", err);
      }
      CALTRAIN_LOG(kWarn) << "[persist] dropped " << (size - keep)
                          << " torn tail byte(s) from " << path;
    }
    size = keep;
    if (::lseek(fd, static_cast<off_t>(size), SEEK_SET) < 0) {
      const int err = errno;
      ::close(fd);
      ThrowIo("journal seek '" + path + "'", err);
    }
  }
  return std::unique_ptr<Journal>(
      new Journal(path, fd, mode, size));
}

Journal::Journal(std::string path, int fd, SyncMode mode, std::uint64_t tail)
    : path_(std::move(path)), fd_(fd), mode_(mode), tail_(tail) {}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Journal::Append(BytesView payload) {
  CALTRAIN_REQUIRE(payload.size() <= kMaxFrameBytes,
                   "journal frame exceeds the 1 GiB bound");
  // The CRC (the only O(payload) compute) runs outside the lock, so
  // concurrent appenders only serialize on the write(2) itself.
  std::array<std::uint8_t, 8> header;
  StoreLe32(header.data(), static_cast<std::uint32_t>(payload.size()));
  StoreLe32(header.data() + 4, Crc32c(payload));

  util::MutexLock lock(mu_);
  const util::FaultAction fault =
      util::FaultInjector::Global().armed()
          ? util::FaultPoint("persist.append")
          : util::FaultAction::kNone;
  if (fault == util::FaultAction::kShortWrite ||
      fault == util::FaultAction::kTornWrite) {
    // Write a deliberately torn prefix of the frame (header plus half
    // the payload) at the tail.
    WritevAll(fd_, header.data(), header.size(), payload.data(),
              payload.size() / 2, "journal torn write");
    if (fault == util::FaultAction::kTornWrite) {
      util::FaultCrash("persist.append");  // die with the torn tail
    }
    // Short write: restore the tail so a retry starts clean, then
    // report the transient failure.
    if (::ftruncate(fd_, static_cast<off_t>(tail_)) != 0) {
      ThrowIo("journal truncate after short write '" + path_ + "'", errno);
    }
    if (::lseek(fd_, static_cast<off_t>(tail_), SEEK_SET) < 0) {
      ThrowIo("journal seek after short write '" + path_ + "'", errno);
    }
    ThrowError(ErrorKind::kUnavailable,
               "injected short write at 'persist.append'");
  }
  try {
    WritevAll(fd_, header.data(), header.size(), payload.data(),
              payload.size(), "journal append");
  } catch (...) {
    // Never leave a partial frame mid-file on a retryable failure.
    (void)::ftruncate(fd_, static_cast<off_t>(tail_));
    (void)::lseek(fd_, static_cast<off_t>(tail_), SEEK_SET);
    throw;
  }
  tail_ += header.size() + payload.size();
  return ++appended_;
}

void Journal::Sync() {
  if (mode_ == SyncMode::kNone) return;
  util::MutexLock lock(mu_);
  const std::uint64_t target = appended_;
  for (;;) {
    if (synced_ >= target) return;  // a leader already covered us
    if (!sync_in_flight_) break;    // become the leader
    sync_cv_.Wait(lock);
  }
  sync_in_flight_ = true;
  // Everything appended up to here is covered by the fdatasync below
  // (appends that land during the fsync are NOT guaranteed covered).
  const std::uint64_t covered = appended_;
  lock.Unlock();

  int err = 0;
  try {
    if (util::FaultInjector::Global().armed()) {
      (void)util::FaultPoint("persist.sync");
    }
    if (::fdatasync(fd_) != 0) err = errno;
  } catch (...) {
    lock.Lock();
    sync_in_flight_ = false;
    sync_cv_.NotifyAll();
    throw;
  }

  lock.Lock();
  sync_in_flight_ = false;
  if (err == 0 && covered > synced_) synced_ = covered;
  sync_cv_.NotifyAll();
  lock.Unlock();
  if (err != 0) ThrowIo("journal fdatasync '" + path_ + "'", err);
}

std::uint64_t Journal::appended_lsn() const noexcept {
  util::MutexLock lock(mu_);
  return appended_;
}

std::uint64_t Journal::synced_lsn() const noexcept {
  util::MutexLock lock(mu_);
  return synced_;
}

}  // namespace caltrain::persist
