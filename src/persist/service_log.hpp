// Typed event log for serve::Service (ISSUE 8).
//
// The service's durable state is a sequence of six event types framed
// into the write-ahead journal (journal.hpp):
//
//   kDirectory            latest participant-directory snapshot (the
//                         provisioned credentials Train/Fingerprint
//                         need to re-open stored records)
//   kCommitBatch          one ticket-ordered committed upload batch:
//                         the encrypted records plus their accept flags
//   kTrainComplete        training finished; names the model snapshot
//                         file and the released FrontNet depth
//   kFingerprintComplete  fingerprinting finished; names the linkage
//                         database snapshot file and the layer used
//   kReopenIngest         ingestion reopened after training
//   kRelease              a model release was served (audit trail)
//
// Replay applies events in journal order: the latest kDirectory wins,
// kCommitBatch events rebuild the record store with the exact
// synchronous-order accept/reject tallies, and the completed phase
// transitions move the phase machine — a crash *during* a phase
// transition leaves no event, so replay lands in the pre-transition
// phase and the deterministic pipeline re-runs the work identically.
//
// Big blobs (model, linkage database) live in snapshot files
// (snapshot.hpp) written *before* the event that names them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/packaging.hpp"
#include "persist/journal.hpp"
#include "util/bytes.hpp"

namespace caltrain::persist {

struct DirectoryEvent {
  std::uint64_t version = 0;  ///< TrainingServer::directory_version()
  Bytes blob;                 ///< TrainingServer::SerializeDirectory()
};

struct CommitBatchEvent {
  std::uint64_t seq = 0;  ///< commit ticket (contiguous from 0)
  std::vector<data::EncryptedRecord> records;
  std::vector<char> accepted;  ///< parallel accept flags
};

struct TrainCompleteEvent {
  std::string model_file;  ///< snapshot of Network::SerializeModel()
  int front_layers = 0;    ///< released FrontNet depth
};

struct FingerprintCompleteEvent {
  std::string linkage_file;   ///< snapshot of LinkageDatabase::Serialize()
  int fingerprint_layer = -1;  ///< embedding layer the stage used
};

struct ReleaseEvent {
  std::string participant_id;
};

/// Callbacks invoked by Replay, one per event in journal order.  Any
/// callback may be left empty to skip that event type.
struct ReplayVisitor {
  std::function<void(DirectoryEvent)> on_directory;
  std::function<void(CommitBatchEvent)> on_commit;
  std::function<void(TrainCompleteEvent)> on_train_complete;
  std::function<void(FingerprintCompleteEvent)> on_fingerprint_complete;
  std::function<void()> on_reopen_ingest;
  std::function<void(ReleaseEvent)> on_release;
};

/// Wire encoding of one commit-batch event — exposed separately so the
/// serve layer's parallel ingest workers can encode OFF the commit
/// lock and append the pre-encoded payload (Journal::Append) under it.
[[nodiscard]] Bytes EncodeCommitBatch(const CommitBatchEvent& event);

class ServiceLog {
 public:
  /// Journal file name inside the durable directory.
  [[nodiscard]] static std::string JournalPath(const std::string& dir);

  /// Replays every valid event of the journal under `dir` through
  /// `visitor` and reports the scan (torn-tail bytes included).  A
  /// missing journal is a clean empty log.  Throws
  /// Error(kInvalidArgument) when the file exists but its header is
  /// corrupt, or when a CRC-valid frame carries a malformed event —
  /// unrecoverable corruption, as opposed to an honest torn tail.
  [[nodiscard]] static ScanReport Replay(const std::string& dir,
                                         const ReplayVisitor& visitor);

  /// Opens the journal under `dir` for appending.  `resume_at` is
  /// ScanReport::valid_bytes from Replay — the torn tail past it is
  /// truncated away.  Pass 0 for a fresh log.
  static std::unique_ptr<ServiceLog> Open(const std::string& dir,
                                          SyncMode mode,
                                          std::uint64_t resume_at = 0);

  // Each Append frames one event and returns its LSN; durability
  // requires a subsequent Sync() (group commit).  All of these throw
  // Error(kUnavailable) on I/O failure and are safe to retry.  The LSN
  // is [[nodiscard]]: callers that only need the durability side
  // effect drop it with an explicit `(void)`.
  [[nodiscard]] std::uint64_t AppendDirectory(const DirectoryEvent& event);
  [[nodiscard]] std::uint64_t AppendCommitBatch(const CommitBatchEvent& event);
  [[nodiscard]] std::uint64_t AppendTrainComplete(
      const TrainCompleteEvent& event);
  [[nodiscard]] std::uint64_t AppendFingerprintComplete(
      const FingerprintCompleteEvent& event);
  [[nodiscard]] std::uint64_t AppendReopenIngest();
  [[nodiscard]] std::uint64_t AppendRelease(const ReleaseEvent& event);
  void Sync() { journal_->Sync(); }

  [[nodiscard]] Journal& journal() noexcept { return *journal_; }

 private:
  explicit ServiceLog(std::unique_ptr<Journal> journal)
      : journal_(std::move(journal)) {}

  std::unique_ptr<Journal> journal_;
};

}  // namespace caltrain::persist
