#include "persist/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "persist/journal.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace caltrain::persist {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'C', 'T', 'S', 'N',
                                                'A', 'P', 'v', '1'};
constexpr std::size_t kHeaderSize = kMagic.size() + 8;

void StoreLe32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t LoadLe32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[noreturn]] void ThrowIo(const std::string& what, int err) {
  ThrowError(ErrorKind::kUnavailable, what + ": " + std::strerror(err));
}

void WriteAll(int fd, const std::uint8_t* data, std::size_t size,
              const char* what) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo(what, errno);
    }
    if (n == 0) ThrowIo(what, ENOSPC);
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

void WriteSnapshot(const std::string& path, BytesView payload) {
  const util::FaultAction fault =
      util::FaultInjector::Global().armed()
          ? util::FaultPoint("persist.snapshot")
          : util::FaultAction::kNone;

  Bytes framed(kHeaderSize + payload.size());
  std::copy(kMagic.begin(), kMagic.end(), framed.begin());
  StoreLe32(framed.data() + kMagic.size(),
            static_cast<std::uint32_t>(payload.size()));
  StoreLe32(framed.data() + kMagic.size() + 4, Crc32c(payload));
  std::memcpy(framed.data() + kHeaderSize, payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) ThrowIo("snapshot open '" + tmp + "'", errno);

  // Short write: leave a truncated tmp, clean up, report transient.
  // Torn write: *rename the truncated file into place* and die — the
  // worst case a real crash can produce, which ReadSnapshot must catch
  // via the CRC.
  const std::size_t to_write =
      (fault == util::FaultAction::kShortWrite ||
       fault == util::FaultAction::kTornWrite)
          ? kHeaderSize + payload.size() / 2
          : framed.size();
  try {
    WriteAll(fd, framed.data(), to_write, "snapshot write");
    if (::fsync(fd) != 0) ThrowIo("snapshot fsync '" + tmp + "'", errno);
  } catch (...) {
    ::close(fd);
    (void)std::remove(tmp.c_str());
    throw;
  }
  ::close(fd);

  if (fault == util::FaultAction::kTornWrite) {
    (void)::rename(tmp.c_str(), path.c_str());
    util::FaultCrash("persist.snapshot");
  }
  if (fault == util::FaultAction::kShortWrite) {
    (void)std::remove(tmp.c_str());
    ThrowError(ErrorKind::kUnavailable,
               "injected short write at 'persist.snapshot'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    (void)std::remove(tmp.c_str());
    ThrowIo("snapshot rename '" + tmp + "' -> '" + path + "'", err);
  }
}

std::optional<Bytes> ReadSnapshot(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    ThrowIo("snapshot open '" + path + "'", errno);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    ThrowIo("snapshot fstat '" + path + "'", err);
  }
  Bytes content(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < content.size()) {
    const ssize_t n = ::read(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ThrowIo("snapshot read '" + path + "'", err);
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  content.resize(done);

  const auto corrupt = [&path](const char* why) -> void {
    ThrowError(ErrorKind::kInvalidArgument,
               std::string("corrupt snapshot '") + path + "': " + why);
  };
  if (content.size() < kHeaderSize ||
      !std::equal(kMagic.begin(), kMagic.end(), content.begin())) {
    corrupt("bad magic or truncated header");
  }
  const std::uint32_t len = LoadLe32(content.data() + kMagic.size());
  const std::uint32_t crc = LoadLe32(content.data() + kMagic.size() + 4);
  if (content.size() - kHeaderSize != len) corrupt("length mismatch");
  Bytes payload(content.begin() +
                    static_cast<std::ptrdiff_t>(kHeaderSize),
                content.end());
  if (Crc32c(payload) != crc) corrupt("CRC mismatch");
  return payload;
}

}  // namespace caltrain::persist
