// Atomic CRC-sealed snapshot files (ISSUE 8).
//
// Snapshots carry the big blobs the journal should not inline —
// serialized models (nn::Network::SerializeModel) and linkage
// databases (linkage::LinkageDatabase::Serialize).  A journal event
// *references* a snapshot by file name; the durability contract is
// snapshot-then-journal: the snapshot file is fully written and
// renamed into place before the event naming it is appended, so a
// replayed event can always read its snapshot, and an orphan snapshot
// (crash between rename and append) is harmless garbage.
//
// On-disk layout:
//
//   "CTSNAPv1" magic (8 bytes) | u32 LE payload length |
//   u32 LE CRC32C(payload) | payload
//
// WriteSnapshot writes to `<path>.tmp`, fsyncs, then rename(2)s over
// `path` — readers never observe a half-written file under the final
// name on a POSIX filesystem; a torn *renamed* file (injected fault,
// disk corruption) is caught by the CRC on read.
//
// Fault point: "persist.snapshot" (eio / short / torn / crash).
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace caltrain::persist {

/// Atomically writes `payload` under `path` (tmp + rename).  Throws
/// Error(kUnavailable) on transient I/O failure with the tmp file
/// removed, so a retry starts clean.
void WriteSnapshot(const std::string& path, BytesView payload);

/// Reads a snapshot back.  Returns nullopt when the file does not
/// exist; throws Error(kInvalidArgument) when it exists but its magic,
/// framing, or CRC is wrong — a corrupt snapshot must never be
/// silently accepted as state.
[[nodiscard]] std::optional<Bytes> ReadSnapshot(const std::string& path);

}  // namespace caltrain::persist
