#include "persist/service_log.hpp"

#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::persist {

namespace {

enum class EventType : std::uint8_t {
  kDirectory = 1,
  kCommitBatch = 2,
  kTrainComplete = 3,
  kFingerprintComplete = 4,
  kReopenIngest = 5,
  kRelease = 6,
};

[[noreturn]] void Malformed(const std::string& why) {
  ThrowError(ErrorKind::kInvalidArgument,
             "malformed journal event: " + why);
}

void DecodeFrame(BytesView payload, const ReplayVisitor& visitor) {
  ByteReader reader(payload);
  const auto type = static_cast<EventType>(reader.ReadU8());
  switch (type) {
    case EventType::kDirectory: {
      DirectoryEvent event;
      event.version = reader.ReadU64();
      event.blob = reader.ReadBytes();
      if (!reader.AtEnd()) Malformed("trailing directory bytes");
      if (visitor.on_directory) visitor.on_directory(std::move(event));
      return;
    }
    case EventType::kCommitBatch: {
      CommitBatchEvent event;
      event.seq = reader.ReadU64();
      const std::uint32_t count = reader.ReadU32();
      event.records.reserve(count);
      event.accepted.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const Bytes wire = reader.ReadBytes();
        event.records.push_back(data::EncryptedRecord::Deserialize(wire));
        event.accepted.push_back(static_cast<char>(reader.ReadU8()));
      }
      if (!reader.AtEnd()) Malformed("trailing commit-batch bytes");
      if (visitor.on_commit) visitor.on_commit(std::move(event));
      return;
    }
    case EventType::kTrainComplete: {
      TrainCompleteEvent event;
      event.model_file = reader.ReadString();
      event.front_layers = static_cast<int>(reader.ReadI64());
      if (!reader.AtEnd()) Malformed("trailing train-complete bytes");
      if (visitor.on_train_complete) {
        visitor.on_train_complete(std::move(event));
      }
      return;
    }
    case EventType::kFingerprintComplete: {
      FingerprintCompleteEvent event;
      event.linkage_file = reader.ReadString();
      event.fingerprint_layer = static_cast<int>(reader.ReadI64());
      if (!reader.AtEnd()) Malformed("trailing fingerprint-complete bytes");
      if (visitor.on_fingerprint_complete) {
        visitor.on_fingerprint_complete(std::move(event));
      }
      return;
    }
    case EventType::kReopenIngest: {
      if (!reader.AtEnd()) Malformed("trailing reopen-ingest bytes");
      if (visitor.on_reopen_ingest) visitor.on_reopen_ingest();
      return;
    }
    case EventType::kRelease: {
      ReleaseEvent event;
      event.participant_id = reader.ReadString();
      if (!reader.AtEnd()) Malformed("trailing release bytes");
      if (visitor.on_release) visitor.on_release(std::move(event));
      return;
    }
  }
  Malformed("unknown event type " +
            std::to_string(static_cast<unsigned>(type)));
}

}  // namespace

std::string ServiceLog::JournalPath(const std::string& dir) {
  return dir + "/service.wal";
}

ScanReport ServiceLog::Replay(const std::string& dir,
                              const ReplayVisitor& visitor) {
  const std::string path = JournalPath(dir);
  const ScanReport report = ScanJournal(
      path, [&visitor](BytesView payload) { DecodeFrame(payload, visitor); });
  if (report.exists && !report.header_valid) {
    ThrowError(ErrorKind::kInvalidArgument,
               "journal '" + path +
                   "' exists but its header is corrupt; refusing to "
                   "treat it as empty");
  }
  return report;
}

std::unique_ptr<ServiceLog> ServiceLog::Open(const std::string& dir,
                                             SyncMode mode,
                                             std::uint64_t resume_at) {
  return std::unique_ptr<ServiceLog>(
      new ServiceLog(Journal::Open(JournalPath(dir), mode, resume_at)));
}

std::uint64_t ServiceLog::AppendDirectory(const DirectoryEvent& event) {
  ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(EventType::kDirectory));
  writer.WriteU64(event.version);
  writer.WriteBytes(event.blob);
  return journal_->Append(writer.data());
}

Bytes EncodeCommitBatch(const CommitBatchEvent& event) {
  CALTRAIN_REQUIRE(event.records.size() == event.accepted.size(),
                   "accept-flag count != record count");
  ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(EventType::kCommitBatch));
  writer.WriteU64(event.seq);
  writer.WriteU32(static_cast<std::uint32_t>(event.records.size()));
  for (std::size_t i = 0; i < event.records.size(); ++i) {
    writer.WriteBytes(event.records[i].Serialize());
    writer.WriteU8(event.accepted[i] != 0 ? 1 : 0);
  }
  return writer.Take();
}

std::uint64_t ServiceLog::AppendCommitBatch(const CommitBatchEvent& event) {
  return journal_->Append(EncodeCommitBatch(event));
}

std::uint64_t ServiceLog::AppendTrainComplete(const TrainCompleteEvent& event) {
  ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(EventType::kTrainComplete));
  writer.WriteString(event.model_file);
  writer.WriteI64(event.front_layers);
  return journal_->Append(writer.data());
}

std::uint64_t ServiceLog::AppendFingerprintComplete(
    const FingerprintCompleteEvent& event) {
  ByteWriter writer;
  writer.WriteU8(
      static_cast<std::uint8_t>(EventType::kFingerprintComplete));
  writer.WriteString(event.linkage_file);
  writer.WriteI64(event.fingerprint_layer);
  return journal_->Append(writer.data());
}

std::uint64_t ServiceLog::AppendReopenIngest() {
  ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(EventType::kReopenIngest));
  return journal_->Append(writer.data());
}

std::uint64_t ServiceLog::AppendRelease(const ReleaseEvent& event) {
  ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(EventType::kRelease));
  writer.WriteString(event.participant_id);
  return journal_->Append(writer.data());
}

}  // namespace caltrain::persist
