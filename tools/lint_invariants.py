#!/usr/bin/env python3
"""Project invariant lint for the CalTrain reproduction.

Dependency-light (stdlib only) so it runs everywhere the tier-1 g++
loop runs — it is registered as a ctest case, and the clang CI job runs
it again as a hard gate.  Three rule families:

  determinism   No wall-clock or ambient-randomness calls in src/.
                The repro's contract is bit-identical reruns at every
                thread count: randomness comes from seeded splitmix
                streams (util::Rng), time from the monotonic
                steady_clock (durations only, never dates).  Banned:
                rand(), srand(, std::random_device, time(,
                system_clock, gettimeofday, clock_gettime,
                std::chrono::high_resolution_clock (it aliases
                system_clock on libstdc++).

  nodiscard     Every function returning serve::Result<T> and every
                non-void persist append/scan API must be [[nodiscard]]:
                a silently dropped status is how a torn write becomes
                an acknowledged one.  Call sites that deliberately drop
                a value do it with an explicit `(void)` cast.

  bare-mutex    No bare std synchronization primitives outside
                src/util/mutex.hpp.  Everything else uses the
                capability-annotated util::Mutex / util::SharedMutex /
                util::CondVar wrappers so clang -Wthread-safety can see
                every acquire/release.

Suppression: a line ending in `// lint:allow(<rule>)` is skipped for
that rule.  There are deliberately no file-level suppressions — every
exception is visible at the line that needs it.

Usage:
  tools/lint_invariants.py [--root DIR] [--rule NAME] [--self-test]

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------- helpers

SRC_EXTENSIONS = {".cpp", ".hpp", ".inc"}


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments, and string/char literal *contents* (the
    quotes stay, so banned tokens inside messages don't fire).  Block
    comments are handled linewise by the caller."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in ('"', "'"):
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule: str, path: pathlib.Path, lineno: int,
                 message: str):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def allowed(line: str, rule: str) -> bool:
    return f"lint:allow({rule})" in line


def iter_code_lines(path: pathlib.Path):
    """Yields (lineno, raw_line, code_line) with comments/strings
    stripped from code_line; block-comment interiors yield empty
    code."""
    in_block = False
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            in_block = False
            line = line[end + 2:]
        # Strip any block comments opened (and possibly closed) here.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " + line[end + 2:]
        yield lineno, raw, strip_comments_and_strings(line)


# --------------------------------------------------------- determinism rule

# token -> why it is banned
DETERMINISM_BANNED = {
    r"\brand\s*\(": "rand() — use a seeded util::Rng stream",
    r"\bsrand\s*\(": "srand() — use a seeded util::Rng stream",
    r"std::random_device": "std::random_device — ambient entropy breaks "
                           "bit-identical reruns; seed util::Rng instead",
    r"\btime\s*\(": "time() — wall clock; use steady_clock durations",
    r"system_clock": "system_clock — wall clock; use steady_clock",
    r"high_resolution_clock": "high_resolution_clock — aliases the wall "
                              "clock on libstdc++; use steady_clock",
    r"\bgettimeofday\s*\(": "gettimeofday() — wall clock",
    r"\bclock_gettime\s*\(": "clock_gettime() — use std::chrono::steady_clock",
    r"\bgetrandom\s*\(": "getrandom() — ambient entropy",
}


def check_determinism(root: pathlib.Path):
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SRC_EXTENSIONS:
            continue
        for lineno, raw, code in iter_code_lines(path):
            if allowed(raw, "determinism"):
                continue
            for pattern, why in DETERMINISM_BANNED.items():
                if re.search(pattern, code):
                    findings.append(Finding("determinism", path, lineno, why))
    return findings


# ----------------------------------------------------------- nodiscard rule

# A declaration line that *starts* a function returning one of these
# must carry [[nodiscard]] (on the same line or the line above).
NODISCARD_RETURN_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|constexpr\s+|inline\s+)*"
    r"(?:serve::)?Result<"
)


def check_nodiscard(root: pathlib.Path):
    findings = []
    paths = [p for p in sorted((root / "src").rglob("*.hpp"))]
    for path in paths:
        prev_code = ""
        for lineno, raw, code in iter_code_lines(path):
            this_prev, prev_code = prev_code, code
            if allowed(raw, "nodiscard"):
                continue
            if not NODISCARD_RETURN_RE.search(code):
                continue
            # Skip alias/using/variable lines and return statements.
            if re.search(r"\busing\b|\btypedef\b|\breturn\b|=", code):
                continue
            # A declaration must have an opening paren on the line or be
            # a multi-line signature start; require a '(' within the
            # statement begun here to call it a function.
            if "(" not in code and ";" in code:
                continue  # a member variable of type Result<T>
            if "[[nodiscard]]" in code or "[[nodiscard]]" in this_prev:
                continue
            findings.append(Finding(
                "nodiscard", path, lineno,
                "function returning Result<T> without [[nodiscard]] — a "
                "dropped status hides failures"))
    # persist layer: non-void Append*/Scan/Replay results must be
    # [[nodiscard]] (the LSN / ScanReport is the durability evidence).
    persist = root / "src" / "persist"
    persist_decl = re.compile(
        r"^\s*(?:static\s+)?(?:std::uint64_t|ScanReport)\s+"
        r"(Append\w*|Scan\w*|Replay)\s*\(")
    for path in sorted(persist.rglob("*.hpp")):
        prev_code = ""
        for lineno, raw, code in iter_code_lines(path):
            this_prev, prev_code = prev_code, code
            if allowed(raw, "nodiscard"):
                continue
            if not persist_decl.search(code):
                continue
            if "[[nodiscard]]" in code or "[[nodiscard]]" in this_prev:
                continue
            findings.append(Finding(
                "nodiscard", path, lineno,
                "persist API returning an LSN/ScanReport without "
                "[[nodiscard]]"))
    return findings


# ----------------------------------------------------------- bare-mutex rule

BARE_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b|"
    r"std::condition_variable\w*|"
    r"std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b|"
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


def check_bare_mutex(root: pathlib.Path):
    findings = []
    wrapper = root / "src" / "util" / "mutex.hpp"
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SRC_EXTENSIONS or path == wrapper:
            continue
        for lineno, raw, code in iter_code_lines(path):
            if allowed(raw, "bare-mutex"):
                continue
            if BARE_MUTEX_RE.search(code):
                findings.append(Finding(
                    "bare-mutex", path, lineno,
                    "bare std synchronization primitive — use the "
                    "annotated util::Mutex/SharedMutex/CondVar wrappers "
                    "(src/util/mutex.hpp)"))
    return findings


RULES = {
    "determinism": check_determinism,
    "nodiscard": check_nodiscard,
    "bare-mutex": check_bare_mutex,
}

# ---------------------------------------------------------------- self-test

# Each fixture is (rule, filename, snippet, must_fire).  The self-test
# materializes a fake repo in a temp dir and asserts every rule fires on
# its bad snippet and stays silent on its good twin.
SELF_TEST_FIXTURES = [
    ("determinism", "src/bad_rand.cpp",
     "int f() { return rand(); }\n", True),
    ("determinism", "src/bad_entropy.cpp",
     "#include <random>\nstd::random_device rd;\n", True),
    ("determinism", "src/bad_wallclock.cpp",
     "auto t = std::chrono::system_clock::now();\n", True),
    ("determinism", "src/good_steady.cpp",
     "auto t = std::chrono::steady_clock::now();\n"
     "// rand() in a comment is fine\n"
     "const char* msg = \"call rand() never\";\n", False),
    ("determinism", "src/good_allowed.cpp",
     "int f() { return rand(); }  // lint:allow(determinism)\n", False),
    ("nodiscard", "src/bad_result.hpp",
     "Result<int> Parse(int x);\n", True),
    ("nodiscard", "src/good_result.hpp",
     "[[nodiscard]] Result<int> Parse(int x);\n", False),
    ("nodiscard", "src/persist/bad_append.hpp",
     "std::uint64_t AppendThing(int x);\n", True),
    ("nodiscard", "src/persist/good_append.hpp",
     "[[nodiscard]] std::uint64_t AppendThing(int x);\n", False),
    ("bare-mutex", "src/bad_lock.cpp",
     "#include <mutex>\nstd::mutex mu;\n", True),
    ("bare-mutex", "src/good_lock.cpp",
     "caltrain::util::Mutex mu;\n", False),
    ("bare-mutex", "src/util/mutex.hpp",
     "std::mutex mu_;  // the one allowed home\n", False),
]


def run_self_test() -> int:
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for rule, rel, snippet, must_fire in SELF_TEST_FIXTURES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(snippet, encoding="utf-8")
            found = [f for f in RULES[rule](root)
                     if f.path == path]
            fired = bool(found)
            status = "ok"
            if fired != must_fire:
                status = "FAIL"
                failures += 1
            expect = "fires" if must_fire else "silent"
            print(f"  [{status}] {rule:<12} {rel:<28} (expected {expect})")
            path.unlink()
    if failures:
        print(f"self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 2
    print(f"self-test: all {len(SELF_TEST_FIXTURES)} fixtures passed")
    return 0


# --------------------------------------------------------------------- main

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("--rule", choices=sorted(RULES), default=None,
                        help="run a single rule family")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"lint_invariants: no src/ under {root}", file=sys.stderr)
        return 2

    rules = {args.rule: RULES[args.rule]} if args.rule else RULES
    findings = []
    for name, check in sorted(rules.items()):
        findings.extend(check(root))

    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({', '.join(sorted(rules))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
