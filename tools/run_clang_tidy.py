#!/usr/bin/env python3
"""Parallel clang-tidy driver over compile_commands.json.

Runs the repo's curated .clang-tidy configuration (WarningsAsErrors: '*')
across every first-party translation unit in the compilation database,
in parallel, with deduplicated diagnostics.  Stdlib-only.

Local use (clang-tidy optional — skips with a notice when absent):
  cmake -B build -S .          # exports compile_commands.json
  tools/run_clang_tidy.py --build-dir build

CI gate (clang-tidy mandatory):
  tools/run_clang_tidy.py --build-dir build --require

Exit status: 0 clean (or tool absent without --require), 1 diagnostics,
2 usage error / tool absent with --require.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

# Diagnostic lines look like: path:line:col: severity: message [check]
DIAG_RE = re.compile(r"^(.+?:\d+:\d+): (?:warning|error): (.*)$")


def first_party(entry: dict, root: pathlib.Path) -> bool:
    path = pathlib.Path(entry["file"])
    try:
        rel = path.resolve().relative_to(root)
    except ValueError:
        return False
    top = rel.parts[0] if rel.parts else ""
    return top in {"src", "tests", "bench", "examples", "tools"}


def run_one(tidy: str, build_dir: pathlib.Path, source: str):
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", source],
        capture_output=True, text=True, check=False)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append(line)
    # clang-tidy exits non-zero on WarningsAsErrors hits; a non-zero
    # exit with no parsed diagnostics means the tool itself failed
    # (bad flags, missing header) — surface stderr for that case.
    tool_error = proc.returncode != 0 and not diags
    return source, diags, tool_error, proc.stderr.strip()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="directory holding compile_commands.json")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping — the CI gate mode")
    parser.add_argument("--jobs", type=int,
                        default=multiprocessing.cpu_count(),
                        help="parallel clang-tidy processes")
    parser.add_argument("--filter", default=None,
                        help="only lint files whose path contains this")
    args = parser.parse_args()

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        msg = "run_clang_tidy: clang-tidy not found on PATH"
        if args.require:
            print(f"{msg} (and --require was given)", file=sys.stderr)
            return 2
        print(f"{msg}; skipping (the clang CI job runs this as a gate)")
        return 0

    root = pathlib.Path(__file__).resolve().parent.parent
    build_dir = pathlib.Path(args.build_dir)
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} missing — configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here)",
              file=sys.stderr)
        return 2

    entries = json.loads(db_path.read_text())
    sources = sorted({e["file"] for e in entries if first_party(e, root)})
    if args.filter:
        sources = [s for s in sources if args.filter in s]
    if not sources:
        print("run_clang_tidy: no first-party sources in the database",
              file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {len(sources)} translation unit(s), "
          f"{args.jobs} job(s)")
    seen = set()
    unique = []
    tool_failures = []
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for source, diags, tool_error, stderr in pool.map(
                lambda s: run_one(tidy, build_dir, s), sources):
            if tool_error:
                tool_failures.append((source, stderr))
                continue
            for line in diags:
                # Dedup header diagnostics repeated across TUs.
                key = DIAG_RE.match(line).group(0)
                if key in seen:
                    continue
                seen.add(key)
                unique.append(line)

    for line in unique:
        print(line)
    for source, stderr in tool_failures:
        print(f"run_clang_tidy: tool failure on {source}:\n{stderr}",
              file=sys.stderr)
    if unique or tool_failures:
        print(f"run_clang_tidy: {len(unique)} diagnostic(s), "
              f"{len(tool_failures)} tool failure(s)", file=sys.stderr)
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
