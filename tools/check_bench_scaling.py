#!/usr/bin/env python3
"""CI gate for parallel scaling (ISSUE 6) and crypto ISA dispatch.

Parses a BENCH_micro.json produced by `bench_micro_substrates --json`
and fails loudly if the thread sweeps regress: throughput at the
highest measured thread count must not fall below 1-thread throughput
on the GEMM and TrainBatch rows.

It also gates the hardware crypto kernels: when the crypto_isa info
row shows an accelerated tier engaged for a family (AES, GHASH via
GCM, SHA-256), the auto rows of that family must run at >= 2x the
forced-scalar rows' byte throughput.  On machines where the hardware
lacks the extension (crypto_isa reports scalar for that family) the
check is skipped gracefully — a missing ISA is not a regression.

Rationale: the work plan is thread-count independent and the dispatch
width is clamped to the physical core count, so adding threads can
only help (more cores) or be a no-op (oversubscribed host).  Multi-
thread throughput materially below 1-thread throughput therefore
always indicates a runtime regression — the bug this gate exists to
catch — regardless of how many cores the CI runner has.  A small
tolerance absorbs run-to-run noise.

Usage: check_bench_scaling.py BENCH_micro.json [--tolerance 0.90]
Exit status 0 = pass, 1 = regression or missing rows.
"""

import argparse
import json
import sys

# op-name prefix -> JSON field holding its throughput
GATED_SWEEPS = {
    "BM_GemmFastThreads": "gflops",
    "BM_TrainBatchThreads": "items_per_s",
}


def sweep_rows(rows, prefix):
    """The (threads, throughput) points of one benchmark's sweep."""
    points = {}
    for row in rows:
        if not row.get("op", "").startswith(prefix):
            continue
        threads = int(row.get("threads", 0))
        value = float(row.get(GATED_SWEEPS[prefix], 0.0))
        if threads >= 1:
            points[threads] = value
    return points


def check(rows, prefix, tolerance):
    points = sweep_rows(rows, prefix)
    if 1 not in points or len(points) < 2:
        print(f"FAIL {prefix}: thread sweep missing from bench JSON "
              f"(found thread counts {sorted(points)})")
        return False
    base = points[1]
    if base <= 0.0:
        print(f"FAIL {prefix}: 1-thread throughput is {base} "
              f"(field '{GATED_SWEEPS[prefix]}' empty? emitter regression)")
        return False
    ok = True
    for threads in sorted(points):
        value = points[threads]
        ratio = value / base
        status = "ok" if ratio >= tolerance else "FAIL"
        print(f"{status:4} {prefix:24} threads={threads:2} "
              f"throughput={value:14.1f} ({ratio:5.2f}x of 1-thread)")
        if ratio < tolerance:
            ok = False
    if not ok:
        print(f"FAIL {prefix}: multi-thread throughput fell below "
              f"{tolerance:.2f}x of 1-thread — parallel dispatch is making "
              f"the hot path slower (negative scaling).")
    return ok


# Crypto families gated on accelerated/scalar byte throughput:
# op prefix -> the crypto_isa summary key whose value must not be
# "scalar" for the check to be meaningful on this machine.
CRYPTO_GATES = {
    "BM_AesCtr": "aes",
    "BM_AesGcmSeal": "ghash",
    "BM_Sha256/": "sha256",
}
CRYPTO_MIN_SPEEDUP = 2.0


def parse_isa_summary(rows):
    """The crypto_isa info row as a dict, e.g. {'aes': 'vaes', ...}."""
    for row in rows:
        if row.get("op") == "crypto_isa":
            return dict(part.split("=", 1)
                        for part in row.get("shape", "").split()
                        if "=" in part)
    return {}


def crypto_rows(rows, prefix, tier):
    """bytes_per_s keyed by shape for one bench at one forced tier."""
    marker = f"/{tier}/"
    out = {}
    for row in rows:
        op = row.get("op", "")
        if op.startswith(prefix) and marker in op:
            value = float(row.get("bytes_per_s", 0.0))
            if value > 0.0:
                out[row.get("shape", "")] = value
    return out


def check_crypto(rows, prefix, family, isa):
    tier = isa.get(family)
    if tier is None:
        print(f"skip {prefix:24} no crypto_isa row — bench predates the "
              f"ISA dispatch, nothing to gate")
        return True
    if tier == "scalar":
        print(f"skip {prefix:24} {family}=scalar on this machine "
              f"(hardware lacks the extension)")
        return True
    scalar = crypto_rows(rows, prefix, "scalar")
    accel = crypto_rows(rows, prefix, "auto")
    shared = sorted(set(scalar) & set(accel))
    if not shared:
        print(f"FAIL {prefix}: {family}={tier} engaged but no "
              f"scalar/auto row pair found in the bench JSON")
        return False
    ok = True
    for shape in shared:
        ratio = accel[shape] / scalar[shape]
        status = "ok" if ratio >= CRYPTO_MIN_SPEEDUP else "FAIL"
        print(f"{status:4} {prefix:24} {shape:8} {family}={tier} "
              f"accelerated {accel[shape] / 1e9:6.2f} GB/s = "
              f"{ratio:5.2f}x scalar")
        if ratio < CRYPTO_MIN_SPEEDUP:
            ok = False
    if not ok:
        print(f"FAIL {prefix}: accelerated tier {tier} below "
              f"{CRYPTO_MIN_SPEEDUP:.1f}x scalar — the hardware kernel "
              f"is not engaging (dispatch regression?)")
    return ok


# Durable-ingest overhead gate (ISSUE 8): the journaled serve-ingest
# row must keep >= this fraction of the plain async row's throughput
# (<= 10% overhead for crash durability on the hot ingest path).
JOURNAL_BASE_OP = "BM_ServeIngest/async_batch32"
JOURNAL_GATED_OP = "BM_ServeIngest/journal_batch32"
JOURNAL_MIN_RATIO = 0.90


def find_items_per_s(rows, op):
    for row in rows:
        if row.get("op") == op:
            value = float(row.get("items_per_s", 0.0))
            if value > 0.0:
                return value
    return None


def check_journal_overhead(rows, require):
    base = find_items_per_s(rows, JOURNAL_BASE_OP)
    gated = find_items_per_s(rows, JOURNAL_GATED_OP)
    if base is None or gated is None:
        # The serve-ingest rows live in BENCH_serve.json, not
        # BENCH_micro.json — skip quietly when this file has neither
        # (unless --serve-only demands them), but fail if only one half
        # of the pair is present.
        if base is None and gated is None and not require:
            print("skip BM_ServeIngest journal gate: no serve-ingest rows "
                  "in this bench JSON")
            return True
        missing = JOURNAL_BASE_OP if base is None else JOURNAL_GATED_OP
        print(f"FAIL BM_ServeIngest journal gate: {missing} row missing "
              f"(emitter regression?)")
        return False
    ratio = gated / base
    status = "ok" if ratio >= JOURNAL_MIN_RATIO else "FAIL"
    print(f"{status:4} {JOURNAL_GATED_OP:32} {gated:12.0f} rec/s = "
          f"{ratio:5.2f}x of {JOURNAL_BASE_OP}")
    if ratio < JOURNAL_MIN_RATIO:
        print(f"FAIL journaled ingest runs at {ratio:.2f}x of plain async "
              f"(floor {JOURNAL_MIN_RATIO:.2f}) — the WAL is costing more "
              f"than 10% on the hot ingest path (group commit broken?)")
        return False
    return True


# Networked-ingest overhead gate (ISSUE 10): uploading through the
# wire protocol + epoll front end over loopback must keep >= this
# fraction of the in-process async API's throughput.  Framing, CRC,
# codec, and loopback syscalls are cheap next to the crypto-bound
# ingest pipeline; a bigger gap means the front end is serializing
# something it shouldn't (Nagle, per-frame allocs, event-loop stalls).
NET_BASE_OP = "BM_NetIngest/inproc_async"
NET_GATED_OP = "BM_NetIngest/tcp"
NET_MIN_RATIO = 0.75


def check_net_overhead(rows, require):
    base = find_items_per_s(rows, NET_BASE_OP)
    gated = find_items_per_s(rows, NET_GATED_OP)
    if base is None or gated is None:
        # The net-ingest rows live in BENCH_net.json — skip quietly
        # when this file has neither (unless --net-only demands them),
        # but fail if only one half of the pair is present.
        if base is None and gated is None and not require:
            print("skip BM_NetIngest gate: no net-ingest rows in this "
                  "bench JSON")
            return True
        missing = NET_BASE_OP if base is None else NET_GATED_OP
        print(f"FAIL BM_NetIngest gate: {missing} row missing "
              f"(emitter regression?)")
        return False
    ratio = gated / base
    status = "ok" if ratio >= NET_MIN_RATIO else "FAIL"
    print(f"{status:4} {NET_GATED_OP:32} {gated:12.0f} rec/s = "
          f"{ratio:5.2f}x of {NET_BASE_OP}")
    if ratio < NET_MIN_RATIO:
        print(f"FAIL networked ingest runs at {ratio:.2f}x of in-process "
              f"(floor {NET_MIN_RATIO:.2f}) — the TCP front end is costing "
              f"more than 25% on the upload path (framing/flow-control "
              f"regression?)")
        return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--tolerance", type=float, default=0.90,
                        help="minimum allowed multi-thread/1-thread "
                             "throughput ratio (default 0.90; >1 enforces "
                             "genuine speedup on multi-core runners)")
    parser.add_argument("--serve-only", action="store_true",
                        help="gate only the serve-ingest journal overhead "
                             "(for BENCH_serve.json, which has no thread "
                             "sweeps or crypto rows); the journal row pair "
                             "becomes mandatory")
    parser.add_argument("--net-only", action="store_true",
                        help="gate only the networked-ingest overhead "
                             "(for BENCH_net.json, which has no thread "
                             "sweeps, crypto, or journal rows); the net "
                             "row pair becomes mandatory")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        rows = json.load(f)

    ok = True
    if args.net_only:
        ok = check_net_overhead(rows, require=True)
    else:
        if not args.serve_only:
            for prefix in GATED_SWEEPS:
                ok = check(rows, prefix, args.tolerance) and ok
            isa = parse_isa_summary(rows)
            for prefix, family in CRYPTO_GATES.items():
                ok = check_crypto(rows, prefix, family, isa) and ok
        ok = check_journal_overhead(rows, require=args.serve_only) and ok
        ok = check_net_overhead(rows, require=False) and ok
    if ok:
        print("bench gate: PASS")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
