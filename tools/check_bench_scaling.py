#!/usr/bin/env python3
"""CI gate for parallel scaling (ISSUE 6).

Parses a BENCH_micro.json produced by `bench_micro_substrates --json`
and fails loudly if the thread sweeps regress: throughput at the
highest measured thread count must not fall below 1-thread throughput
on the GEMM and TrainBatch rows.

Rationale: the work plan is thread-count independent and the dispatch
width is clamped to the physical core count, so adding threads can
only help (more cores) or be a no-op (oversubscribed host).  Multi-
thread throughput materially below 1-thread throughput therefore
always indicates a runtime regression — the bug this gate exists to
catch — regardless of how many cores the CI runner has.  A small
tolerance absorbs run-to-run noise.

Usage: check_bench_scaling.py BENCH_micro.json [--tolerance 0.90]
Exit status 0 = pass, 1 = regression or missing rows.
"""

import argparse
import json
import sys

# op-name prefix -> JSON field holding its throughput
GATED_SWEEPS = {
    "BM_GemmFastThreads": "gflops",
    "BM_TrainBatchThreads": "items_per_s",
}


def sweep_rows(rows, prefix):
    """The (threads, throughput) points of one benchmark's sweep."""
    points = {}
    for row in rows:
        if not row.get("op", "").startswith(prefix):
            continue
        threads = int(row.get("threads", 0))
        value = float(row.get(GATED_SWEEPS[prefix], 0.0))
        if threads >= 1:
            points[threads] = value
    return points


def check(rows, prefix, tolerance):
    points = sweep_rows(rows, prefix)
    if 1 not in points or len(points) < 2:
        print(f"FAIL {prefix}: thread sweep missing from bench JSON "
              f"(found thread counts {sorted(points)})")
        return False
    base = points[1]
    if base <= 0.0:
        print(f"FAIL {prefix}: 1-thread throughput is {base} "
              f"(field '{GATED_SWEEPS[prefix]}' empty? emitter regression)")
        return False
    ok = True
    for threads in sorted(points):
        value = points[threads]
        ratio = value / base
        status = "ok" if ratio >= tolerance else "FAIL"
        print(f"{status:4} {prefix:24} threads={threads:2} "
              f"throughput={value:14.1f} ({ratio:5.2f}x of 1-thread)")
        if ratio < tolerance:
            ok = False
    if not ok:
        print(f"FAIL {prefix}: multi-thread throughput fell below "
              f"{tolerance:.2f}x of 1-thread — parallel dispatch is making "
              f"the hot path slower (negative scaling).")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--tolerance", type=float, default=0.90,
                        help="minimum allowed multi-thread/1-thread "
                             "throughput ratio (default 0.90; >1 enforces "
                             "genuine speedup on multi-core runners)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        rows = json.load(f)

    ok = True
    for prefix in GATED_SWEEPS:
        ok = check(rows, prefix, args.tolerance) and ok
    if ok:
        print("parallel scaling gate: PASS")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
